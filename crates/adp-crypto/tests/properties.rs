//! Property-based tests for the cryptographic substrate: algebraic laws of
//! the big-integer arithmetic, Merkle tree soundness, chain composition,
//! and signature scheme round-trips.

use adp_crypto::bigint::{is_probable_prime, BigUint};
use adp_crypto::{
    chain_extend, chain_from_value, chain_run, hasher::HashDomain, root_from_mixed,
    root_from_range, verify_inclusion, AggregateSignature, Hasher, Keypair, MerkleTree, MixedLeaf,
    MontgomeryCtx,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn keypair() -> &'static Keypair {
    static K: OnceLock<Keypair> = OnceLock::new();
    K.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x9909);
        Keypair::generate(512, &mut rng)
    })
}

prop_compose! {
    fn arb_biguint()(bytes in prop::collection::vec(any::<u8>(), 0..40)) -> BigUint {
        BigUint::from_bytes_be(&bytes)
    }
}

/// Limb widths straddling the fixed-width Montgomery kernels: the 8- and
/// 16-limb fast paths plus one limb on either side of each.
const BOUNDARY_LIMBS: [usize; 6] = [7, 8, 9, 15, 16, 17];

/// A Montgomery context over a random odd modulus of exactly
/// `BOUNDARY_LIMBS[widx]` limbs (`extra` scatters the bit length within
/// the top limb), plus the modulus and the RNG for operand generation.
fn boundary_ctx(widx: usize, extra: usize, seed: u64) -> (MontgomeryCtx, BigUint, StdRng) {
    let limbs = BOUNDARY_LIMBS[widx];
    let bits = (limbs - 1) * 64 + 1 + (extra % 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = BigUint::random_bits(&mut rng, bits);
    if m.is_even() {
        m = m.add(&BigUint::one());
    }
    let ctx = MontgomeryCtx::new(&m).expect("odd modulus > 1");
    (ctx, m, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- BigUint ring laws ----------------

    #[test]
    fn add_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn sub_inverts_add(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn shifts_roundtrip(a in arb_biguint(), s in 0usize..200) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn bytes_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn mod_pow_multiplicative(a in arb_biguint(), b in arb_biguint(), m in arb_biguint()) {
        prop_assume!(m > BigUint::one());
        // (a*b)^2 == a^2 * b^2 (mod m)
        let two = BigUint::from_u64(2);
        let lhs = a.mul(&b).mod_pow(&two, &m);
        let rhs = a.mod_pow(&two, &m).mul_mod(&b.mod_pow(&two, &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inverse_is_inverse(a in arb_biguint(), m in arb_biguint()) {
        prop_assume!(m > BigUint::one());
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn gcd_divides_both(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn primes_pass_fermat(seed in any::<u64>()) {
        // For random 64-bit odd numbers that Miller-Rabin accepts, Fermat's
        // little theorem must hold for a few bases.
        let mut rng = StdRng::seed_from_u64(seed);
        let candidate = BigUint::from_u64(rand::Rng::gen_range(&mut rng, 3u64..u64::MAX) | 1);
        if is_probable_prime(&candidate, 16, &mut rng) {
            for base in [2u64, 3, 5, 7] {
                let b = BigUint::from_u64(base);
                let exp = candidate.sub(&BigUint::one());
                prop_assert_eq!(b.mod_pow(&exp, &candidate), BigUint::one());
            }
        }
    }

    // ---------------- Merkle trees ----------------

    #[test]
    fn inclusion_proofs_sound(n in 1usize..50, idx in 0usize..50) {
        let h = Hasher::default();
        let leaves: Vec<_> = (0..n).map(|i| h.hash(HashDomain::Leaf, &(i as u64).to_le_bytes())).collect();
        let tree = MerkleTree::build(h, leaves.clone());
        let idx = idx % n;
        let proof = tree.prove(idx);
        prop_assert_eq!(verify_inclusion(&h, leaves[idx], &proof), tree.root());
        // A different leaf with the same proof must fail.
        if n > 1 {
            let other = (idx + 1) % n;
            prop_assert_ne!(verify_inclusion(&h, leaves[other], &proof), tree.root());
        }
    }

    #[test]
    fn range_proofs_sound(n in 1usize..40, lo in 0usize..40, len in 1usize..10) {
        let h = Hasher::default();
        let leaves: Vec<_> = (0..n).map(|i| h.hash(HashDomain::Leaf, &(i as u64).to_le_bytes())).collect();
        let tree = MerkleTree::build(h, leaves.clone());
        let lo = lo % n;
        let hi = (lo + len - 1).min(n - 1);
        let fringe = tree.prove_range(lo, hi);
        let root = root_from_range(&h, n, lo, &leaves[lo..=hi], &fringe);
        prop_assert_eq!(root, Some(tree.root()));
    }

    #[test]
    fn mixed_roots_agree_with_plain(n in 1usize..20, mask in any::<u32>()) {
        let h = Hasher::default();
        let values: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; (i % 5) + 1]).collect();
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        let tree = MerkleTree::from_values(h, &refs);
        let mixed: Vec<MixedLeaf> = refs.iter().enumerate().map(|(i, v)| {
            if mask >> (i % 32) & 1 == 1 {
                MixedLeaf::Digest(h.hash(HashDomain::Leaf, v))
            } else {
                MixedLeaf::Value(v)
            }
        }).collect();
        prop_assert_eq!(root_from_mixed(&h, &mixed), tree.root());
    }

    // ---------------- Montgomery differential suite ----------------
    //
    // The 8- and 16-limb operand widths take dedicated fixed-width CIOS
    // kernels (512/1024 bits: the CRT halves and full moduli); everything
    // else runs the generic loop. Each law below therefore samples limb
    // counts straddling those fast-path boundaries (7/8/9 and 15/16/17)
    // and checks the Montgomery result against the division-based
    // reference arithmetic bit for bit.

    #[test]
    fn mont_mul_matches_mul_mod(widx in 0usize..6, extra in 0usize..64, seed in any::<u64>()) {
        let (ctx, m, mut rng) = boundary_ctx(widx, extra, seed);
        let a = BigUint::random_below(&mut rng, &m);
        let b = BigUint::random_below(&mut rng, &m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    #[test]
    fn mont_sqr_matches_mul_mod(widx in 0usize..6, extra in 0usize..64, seed in any::<u64>()) {
        let (ctx, m, mut rng) = boundary_ctx(widx, extra, seed);
        let a = BigUint::random_below(&mut rng, &m);
        prop_assert_eq!(ctx.sqr_mod(&a), a.mul_mod(&a, &m));
    }

    #[test]
    fn mont_mod_pow_matches_plain(
        widx in 0usize..6,
        extra in 0usize..64,
        exp_bits in 1usize..224,
        seed in any::<u64>(),
    ) {
        // exp_bits spans every sliding-window width the ladder selects.
        let (ctx, m, mut rng) = boundary_ctx(widx, extra, seed);
        let base = BigUint::random_below(&mut rng, &m);
        let exp = BigUint::random_bits(&mut rng, exp_bits);
        prop_assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_plain(&exp, &m));
    }

    #[test]
    fn mont_mod_pow_degenerate_exponents(widx in 0usize..6, extra in 0usize..64, seed in any::<u64>()) {
        let (ctx, m, mut rng) = boundary_ctx(widx, extra, seed);
        let base = BigUint::random_below(&mut rng, &m);
        prop_assert_eq!(ctx.mod_pow(&base, &BigUint::zero()), BigUint::one());
        prop_assert_eq!(ctx.mod_pow(&base, &BigUint::one()), base.rem(&m));
        // Unreduced base: the kernel must reduce before entering the domain.
        let big_base = base.add(&m);
        let exp = BigUint::from_u64(3);
        prop_assert_eq!(ctx.mod_pow(&big_base, &exp), base.mod_pow_plain(&exp, &m));
    }

    #[test]
    fn mont_product_matches_fold(
        widx in 0usize..6,
        count in 0usize..10,
        extra in 0usize..64,
        seed in any::<u64>(),
    ) {
        let (ctx, m, mut rng) = boundary_ctx(widx, extra, seed);
        let factors: Vec<BigUint> =
            (0..count).map(|_| BigUint::random_below(&mut rng, &m)).collect();
        let expected = factors.iter().fold(BigUint::one(), |acc, f| acc.mul_mod(f, &m));
        prop_assert_eq!(ctx.product_mod(factors.iter()), expected);
    }

    // ---------------- Chains ----------------

    #[test]
    fn chain_extension_composes(a in 0u64..200, b in 0u64..200, tag in any::<u32>()) {
        let h = Hasher::default();
        let part = chain_from_value(&h, b"v", tag, a);
        prop_assert_eq!(chain_extend(&h, part, b), chain_from_value(&h, b"v", tag, a + b));
    }

    #[test]
    fn chain_run_agrees_with_singles(tags in prop::collection::vec(any::<u32>(), 0..6), steps in 0u64..30) {
        let h = Hasher::default();
        let pairs: Vec<(u32, u64)> = tags.iter().map(|&t| (t, steps)).collect();
        let bulk = chain_run(&h, b"prop-value", &pairs);
        for (d, &(pos, st)) in bulk.iter().zip(&pairs) {
            prop_assert_eq!(*d, chain_from_value(&h, b"prop-value", pos, st));
        }
    }

    #[test]
    fn chains_injective_over_steps(a in 0u64..100, b in 0u64..100) {
        prop_assume!(a != b);
        let h = Hasher::default();
        prop_assert_ne!(
            chain_from_value(&h, b"v", 0, a),
            chain_from_value(&h, b"v", 0, b)
        );
    }

    // ---------------- Signatures ----------------

    #[test]
    fn sign_verify_roundtrip(msg in prop::collection::vec(any::<u8>(), 0..100)) {
        let h = Hasher::default();
        let kp = keypair();
        let d = h.hash(HashDomain::Data, &msg);
        let sig = kp.sign(&h, &d);
        prop_assert!(kp.public().verify(&h, &d, &sig));
    }

    #[test]
    fn aggregates_verify_and_reject_subsets(count in 1usize..8) {
        let h = Hasher::default();
        let kp = keypair();
        let digests: Vec<_> = (0..count).map(|i| h.hash(HashDomain::Data, &[i as u8])).collect();
        let sigs: Vec<_> = digests.iter().map(|d| kp.sign(&h, d)).collect();
        let refs: Vec<_> = sigs.iter().collect();
        let agg = AggregateSignature::combine(kp.public(), &refs);
        prop_assert!(agg.verify(&h, kp.public(), &digests));
        if count > 1 {
            prop_assert!(!agg.verify(&h, kp.public(), &digests[..count - 1]));
        }
    }
}
