//! Query abstract syntax: selection predicates, projections, range bounds,
//! and the select / join query forms the paper's scheme supports
//! (Section 4: σ, π, ⋈ with primary-key/foreign-key equi-joins and band
//! joins, plus multipoint selections on non-key attributes).

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::ops::Bound;

/// Comparison operators (the paper's Θ ∈ {=, ≠, <, ≤, >, ≥}).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompareOp {
    /// Evaluates `left Θ right`; `None` if the values are not comparable.
    pub fn eval(&self, left: &Value, right: &Value) -> Option<bool> {
        let ord = left.partial_cmp_typed(right)?;
        Some(match self {
            CompareOp::Eq => ord.is_eq(),
            CompareOp::Ne => ord.is_ne(),
            CompareOp::Lt => ord.is_lt(),
            CompareOp::Le => ord.is_le(),
            CompareOp::Gt => ord.is_gt(),
            CompareOp::Ge => ord.is_ge(),
        })
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A predicate `column Θ constant`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Predicate {
    pub column: String,
    pub op: CompareOp,
    pub value: Value,
}

impl Predicate {
    /// Shorthand constructor.
    pub fn new(column: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        Predicate {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the predicate against record values (positionally resolved
    /// through the schema). Unknown columns or type mismatches evaluate to
    /// false.
    pub fn eval(&self, schema: &Schema, values: &[Value]) -> bool {
        schema
            .column_index(&self.column)
            .and_then(|i| self.op.eval(&values[i], &self.value))
            .unwrap_or(false)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

/// A closed/open/unbounded key interval `[α, β]` on the sort attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyRange {
    pub lo: Bound<i64>,
    pub hi: Bound<i64>,
}

impl KeyRange {
    /// The full domain.
    pub fn all() -> Self {
        KeyRange {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// `α ≤ K ≤ β`.
    pub fn closed(alpha: i64, beta: i64) -> Self {
        KeyRange {
            lo: Bound::Included(alpha),
            hi: Bound::Included(beta),
        }
    }

    /// `K ≥ α` (the Section 3.1 greater-than predicate form).
    pub fn at_least(alpha: i64) -> Self {
        KeyRange {
            lo: Bound::Included(alpha),
            hi: Bound::Unbounded,
        }
    }

    /// `K < β`.
    pub fn less_than(beta: i64) -> Self {
        KeyRange {
            lo: Bound::Unbounded,
            hi: Bound::Excluded(beta),
        }
    }

    /// `K = v`, i.e. `v ≤ K ≤ v` (Section 4.1: equality reduces to range).
    pub fn point(v: i64) -> Self {
        KeyRange::closed(v, v)
    }

    /// Whether `k` lies inside the range.
    pub fn contains(&self, k: i64) -> bool {
        let above = match self.lo {
            Bound::Unbounded => true,
            Bound::Included(a) => k >= a,
            Bound::Excluded(a) => k > a,
        };
        let below = match self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => k <= b,
            Bound::Excluded(b) => k < b,
        };
        above && below
    }

    /// Intersects with another range (used by access-control rewriting).
    pub fn intersect(&self, other: &KeyRange) -> KeyRange {
        fn tighter_lo(a: Bound<i64>, b: Bound<i64>) -> Bound<i64> {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x,
                (Bound::Included(x), Bound::Included(y)) => Bound::Included(x.max(y)),
                (Bound::Excluded(x), Bound::Excluded(y)) => Bound::Excluded(x.max(y)),
                (Bound::Included(x), Bound::Excluded(y))
                | (Bound::Excluded(y), Bound::Included(x)) => {
                    if y >= x {
                        Bound::Excluded(y)
                    } else {
                        Bound::Included(x)
                    }
                }
            }
        }
        fn tighter_hi(a: Bound<i64>, b: Bound<i64>) -> Bound<i64> {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x,
                (Bound::Included(x), Bound::Included(y)) => Bound::Included(x.min(y)),
                (Bound::Excluded(x), Bound::Excluded(y)) => Bound::Excluded(x.min(y)),
                (Bound::Included(x), Bound::Excluded(y))
                | (Bound::Excluded(y), Bound::Included(x)) => {
                    if y <= x {
                        Bound::Excluded(y)
                    } else {
                        Bound::Included(x)
                    }
                }
            }
        }
        KeyRange {
            lo: tighter_lo(self.lo, other.lo),
            hi: tighter_hi(self.hi, other.hi),
        }
    }

    /// Derives a key range from a predicate on the key column, if the
    /// operator is range-expressible (`≠` is not; the paper maps it to a
    /// union of two ranges, which callers handle as two queries).
    pub fn from_predicate(p: &Predicate) -> Option<KeyRange> {
        let v = p.value.as_int()?;
        Some(match p.op {
            CompareOp::Eq => KeyRange::point(v),
            CompareOp::Lt => KeyRange {
                lo: Bound::Unbounded,
                hi: Bound::Excluded(v),
            },
            CompareOp::Le => KeyRange {
                lo: Bound::Unbounded,
                hi: Bound::Included(v),
            },
            CompareOp::Gt => KeyRange {
                lo: Bound::Excluded(v),
                hi: Bound::Unbounded,
            },
            CompareOp::Ge => KeyRange {
                lo: Bound::Included(v),
                hi: Bound::Unbounded,
            },
            CompareOp::Ne => return None,
        })
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Bound::Unbounded => write!(f, "(-∞")?,
            Bound::Included(a) => write!(f, "[{a}")?,
            Bound::Excluded(a) => write!(f, "({a}")?,
        }
        write!(f, ", ")?;
        match self.hi {
            Bound::Unbounded => write!(f, "+∞)"),
            Bound::Included(b) => write!(f, "{b}]"),
            Bound::Excluded(b) => write!(f, "{b})"),
        }
    }
}

/// Projection: all columns or a named subset. The key attribute is always
/// retained in verified results (the user needs it to check completeness;
/// Section 4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Projection {
    All,
    Columns(Vec<String>),
}

impl Projection {
    /// Resolves to column indices. Unknown columns are rejected.
    pub fn resolve(&self, schema: &Schema) -> Option<Vec<usize>> {
        match self {
            Projection::All => Some((0..schema.arity()).collect()),
            Projection::Columns(names) => names.iter().map(|n| schema.column_index(n)).collect(),
        }
    }

    /// Whether a column index is kept.
    pub fn keeps(&self, schema: &Schema, index: usize) -> bool {
        match self {
            Projection::All => true,
            Projection::Columns(names) => {
                names.iter().any(|n| schema.column_index(n) == Some(index))
            }
        }
    }
}

/// A select-project query over a single table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectQuery {
    /// Range condition on the sort attribute `K` (`α ≤ K ≤ β`).
    pub range: KeyRange,
    /// Additional predicates on non-key attributes (making the query a
    /// *multipoint* query, Section 4.4).
    pub filters: Vec<Predicate>,
    /// Projection list.
    pub projection: Projection,
    /// SQL DISTINCT (Section 4.2 duplicate handling).
    pub distinct: bool,
}

impl SelectQuery {
    /// Selects a key range with all columns.
    pub fn range(range: KeyRange) -> Self {
        SelectQuery {
            range,
            filters: Vec::new(),
            projection: Projection::All,
            distinct: false,
        }
    }

    /// Builder: adds a non-key filter.
    pub fn filter(mut self, p: Predicate) -> Self {
        self.filters.push(p);
        self
    }

    /// Builder: sets the projection.
    pub fn project(mut self, columns: &[&str]) -> Self {
        self.projection = Projection::Columns(columns.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Builder: requests duplicate elimination.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// True iff the query has non-key filters (multipoint form).
    pub fn is_multipoint(&self) -> bool {
        !self.filters.is_empty()
    }
}

/// A primary-key/foreign-key equi-join `R ⋈_{R.fk = S.pk} S` with optional
/// selections on either side (Section 4.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinQuery {
    /// Foreign-key column of the outer relation R (R's sort attribute).
    pub fk_column: String,
    /// Primary-key column of the inner relation S (S's sort attribute).
    pub pk_column: String,
    /// Selection on R's foreign key.
    pub fk_range: KeyRange,
    /// Projection over R's columns.
    pub r_projection: Projection,
    /// Projection over S's columns.
    pub s_projection: Projection,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
            ],
            "salary",
        )
    }

    #[test]
    fn compare_ops() {
        use CompareOp::*;
        let three = Value::Int(3);
        let five = Value::Int(5);
        assert_eq!(Lt.eval(&three, &five), Some(true));
        assert_eq!(Ge.eval(&three, &five), Some(false));
        assert_eq!(Eq.eval(&three, &three), Some(true));
        assert_eq!(Ne.eval(&three, &five), Some(true));
        assert_eq!(Le.eval(&three, &three), Some(true));
        assert_eq!(Gt.eval(&five, &three), Some(true));
        assert_eq!(Eq.eval(&three, &Value::from("3")), None);
    }

    #[test]
    fn predicate_eval() {
        let s = schema();
        let vals = vec![Value::Int(1), Value::from("A"), Value::Int(2000)];
        assert!(Predicate::new("salary", CompareOp::Lt, 10_000i64).eval(&s, &vals));
        assert!(!Predicate::new("salary", CompareOp::Gt, 10_000i64).eval(&s, &vals));
        assert!(!Predicate::new("missing", CompareOp::Eq, 1i64).eval(&s, &vals));
        // Type mismatch → false.
        assert!(!Predicate::new("name", CompareOp::Eq, 5i64).eval(&s, &vals));
    }

    #[test]
    fn range_contains() {
        let r = KeyRange::closed(10, 20);
        assert!(r.contains(10) && r.contains(20) && r.contains(15));
        assert!(!r.contains(9) && !r.contains(21));
        let r = KeyRange {
            lo: Bound::Excluded(10),
            hi: Bound::Excluded(20),
        };
        assert!(!r.contains(10) && !r.contains(20) && r.contains(11));
        assert!(KeyRange::all().contains(i64::MIN) && KeyRange::all().contains(i64::MAX));
    }

    #[test]
    fn range_intersection() {
        let a = KeyRange::closed(0, 100);
        let b = KeyRange::less_than(50);
        let c = a.intersect(&b);
        assert!(c.contains(0) && c.contains(49));
        assert!(!c.contains(50) && !c.contains(101));
        // Same endpoint, mixed bounds: exclusive wins.
        let d = KeyRange::closed(0, 50).intersect(&KeyRange::less_than(50));
        assert!(!d.contains(50));
        assert!(d.contains(49));
    }

    #[test]
    fn range_from_predicate() {
        let p = Predicate::new("salary", CompareOp::Lt, 10_000i64);
        let r = KeyRange::from_predicate(&p).unwrap();
        assert!(r.contains(9999) && !r.contains(10_000));
        assert_eq!(
            KeyRange::from_predicate(&Predicate::new("k", CompareOp::Eq, 5i64)),
            Some(KeyRange::point(5))
        );
        assert!(KeyRange::from_predicate(&Predicate::new("k", CompareOp::Ne, 5i64)).is_none());
    }

    #[test]
    fn projection_resolution() {
        let s = schema();
        assert_eq!(Projection::All.resolve(&s), Some(vec![0, 1, 2]));
        let p = Projection::Columns(vec!["salary".into(), "id".into()]);
        assert_eq!(p.resolve(&s), Some(vec![2, 0]));
        assert!(p.keeps(&s, 0) && !p.keeps(&s, 1));
        let bad = Projection::Columns(vec!["nope".into()]);
        assert_eq!(bad.resolve(&s), None);
    }

    #[test]
    fn select_builder() {
        let q = SelectQuery::range(KeyRange::less_than(10_000))
            .filter(Predicate::new("dept", CompareOp::Eq, 1i64))
            .project(&["id", "salary"])
            .distinct();
        assert!(q.is_multipoint());
        assert!(q.distinct);
        assert_eq!(
            q.projection,
            Projection::Columns(vec!["id".into(), "salary".into()])
        );
    }
}
