//! # adp-store
//!
//! Durable storage for signed tables: the missing piece between the
//! paper's one-shot `Owner::sign_table` and a long-running publisher. A
//! store is a directory holding
//!
//! * a **snapshot** (`snapshot.adps`) — a versioned, CRC-framed image of a
//!   [`SignedTable`]: certificate (schema, domain, scheme config, owner
//!   public key), rows, and the `n + 2` chain signatures, each section
//!   independently checksummed; and
//! * an **update log** (`update.adpl`) — an append-only sequence of
//!   length-prefixed, CRC-framed batch records, each carrying the
//!   canonical mutations of one [`Owner::apply_batch`] call plus the
//!   `O(k)` re-signed chain signatures.
//!
//! [`Store::open`] reconstructs the live table by loading the snapshot and
//! replaying the log through [`SignedTable::replay_batch`], which verifies
//! every replayed signature against the link digest recomputed from local
//! state — a flipped bit anywhere in either file surfaces as a typed
//! [`StoreError`], never a panic and never silently wrong data.
//! [`Store::compact`] folds the log into a fresh snapshot.
//!
//! The byte-level formats are specified in `docs/STORAGE.md`; every layout
//! rule there is enforced by the decoders in [`mod@format`] and [`log`].
//!
//! ## Quick start
//!
//! ```
//! use adp_core::prelude::*;
//! use adp_relation::{Column, Record, Schema, Table, Value, ValueType};
//! use adp_store::Store;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let schema = Schema::new(vec![Column::new("salary", ValueType::Int)], "salary");
//! let mut table = Table::new("emp", schema);
//! for s in [2000i64, 3500, 8010] {
//!     table.insert(Record::new(vec![Value::Int(s)])).unwrap();
//! }
//! let mut rng = StdRng::seed_from_u64(7);
//! let owner = Owner::new(512, &mut rng);
//! let signed = owner
//!     .sign_table(table, Domain::new(0, 100_000), SchemeConfig::default())
//!     .unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("adp-store-doc-{}", std::process::id()));
//! let mut store = Store::create(&dir, signed).unwrap();
//! store
//!     .apply_batch(&owner, vec![Mutation::Insert(Record::new(vec![Value::Int(5_000)]))])
//!     .unwrap();
//! drop(store);
//!
//! // "Restart": reload from disk; the log replays and re-verifies.
//! let store = Store::open(&dir).unwrap();
//! assert_eq!(store.table().len(), 4);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod crc32;
pub mod format;
pub mod log;
pub mod store;

pub use log::LogRecord;
pub use store::{Store, LOG_FILE, SNAPSHOT_FILE};
// Re-exported so store users can inject I/O faults without naming the
// fault crate themselves.
pub use adp_faults::{FaultyIo, RealIo, StoreIo};

use adp_core::owner::OwnerError;
#[allow(unused_imports)] // rustdoc links
use adp_core::prelude::{Owner, SignedTable};
use adp_core::wire::WireError;
use std::fmt;
use std::io;

/// Why a store could not be read, decoded, or mutated. Corrupt input —
/// truncation, bad magic or version, checksum mismatch, a tampered log
/// record — always surfaces as one of these, never as a panic.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// A file did not start with the expected magic bytes.
    BadMagic {
        /// Which file/structure was being decoded.
        context: &'static str,
    },
    /// The format version is not one this build can read.
    BadVersion {
        /// Which file/structure was being decoded.
        context: &'static str,
        /// The version actually found.
        got: u16,
    },
    /// The input ended before the declared structure was complete.
    Truncated {
        /// Which structure was cut short.
        context: &'static str,
    },
    /// A CRC-32 check failed: the bytes were corrupted or tampered with.
    CrcMismatch {
        /// Which checksummed frame failed.
        context: &'static str,
    },
    /// Extra bytes followed a complete structure.
    TrailingBytes {
        /// Which structure had a tail.
        context: &'static str,
    },
    /// A section tag was unknown or sections arrived out of order.
    BadSection {
        /// What was wrong.
        context: &'static str,
    },
    /// A section payload failed the inner wire codec.
    Wire(WireError),
    /// Reconstructing or mutating the signed table failed — including a
    /// replayed log record whose signatures do not verify.
    Owner(OwnerError),
    /// Log record sequence numbers are not contiguous with the snapshot.
    SequenceGap {
        /// The sequence number the replay expected next.
        expected: u64,
        /// The sequence number actually found.
        got: u64,
    },
    /// [`Store::apply_batch`] was called with an owner whose public key
    /// does not match the stored table's.
    OwnerKeyMismatch,
    /// Another live process (or another `Store` in this one) holds the
    /// directory's single-writer lock (an OS advisory lock, released
    /// automatically when the holder exits). `holder` is the PID recorded
    /// in the `LOCK` file, or 0 if it could not be read.
    Locked {
        /// PID recorded in the `LOCK` file.
        holder: u32,
    },
    /// The reconstructed table failed the full signature audit: the
    /// snapshot bytes were consistent (CRCs passed) but do not match the
    /// owner's signatures — tampered or mis-published data.
    AuditFailed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { context } => write!(f, "{context}: bad magic"),
            StoreError::BadVersion { context, got } => {
                write!(f, "{context}: unsupported format version {got}")
            }
            StoreError::Truncated { context } => write!(f, "{context}: truncated"),
            StoreError::CrcMismatch { context } => write!(f, "{context}: CRC-32 mismatch"),
            StoreError::TrailingBytes { context } => write!(f, "{context}: trailing bytes"),
            StoreError::BadSection { context } => write!(f, "bad section: {context}"),
            StoreError::Wire(e) => write!(f, "section payload: {e}"),
            StoreError::Owner(e) => write!(f, "table reconstruction: {e}"),
            StoreError::SequenceGap { expected, got } => {
                write!(f, "log sequence gap: expected {expected}, found {got}")
            }
            StoreError::OwnerKeyMismatch => {
                write!(f, "owner public key does not match the stored table's")
            }
            StoreError::Locked { holder } => {
                write!(
                    f,
                    "store directory is locked by another writer (pid {holder})"
                )
            }
            StoreError::AuditFailed => {
                write!(f, "store data does not match its signatures")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

impl From<OwnerError> for StoreError {
    fn from(e: OwnerError) -> Self {
        StoreError::Owner(e)
    }
}
