//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the surface this workspace's property suites use: the
//! [`Strategy`](strategy::Strategy) trait over ranges / `any` / tuples /
//! collections / regex-lite strings, `prop_map`, `prop_filter`, `boxed`,
//! and the `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert*!`,
//! `prop_assume!` macros plus [`ProptestConfig`].
//!
//! Deliberately missing vs upstream: shrinking (a failing case panics with
//! the case number and deterministic seed instead of a minimized input),
//! persistence files, and fork support. Case counts honor
//! `ProptestConfig::with_cases` and are clamped by the `PROPTEST_CASES`
//! environment variable when set, so CI can bound runtime globally.

pub mod strategy;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-suite configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count toward the
    /// case budget.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Strategy-facing namespace mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Generates an arbitrary value of `T` over its whole domain.
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// A strategy that always yields a clone of the given value.
pub fn just<T: Clone>(value: T) -> strategy::Just<T> {
    strategy::Just(value)
}

#[doc(hidden)]
pub mod runner {
    use super::*;

    fn env_case_cap() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Drives one property: runs `case` until `config.cases` non-rejected
    /// executions succeed, panicking on the first failure with enough
    /// context to replay (test name, case index, seed).
    pub fn run(
        name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        let cases = match env_case_cap() {
            Some(cap) => config.cases.min(cap.max(1)),
            None => config.cases,
        };
        // Deterministic per-test seed: stable FNV-1a over the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1_0000_01b3);
        }
        let max_attempts = (cases as u64).saturating_mul(20).max(100);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        while accepted < cases {
            if attempts >= max_attempts {
                panic!(
                    "proptest '{name}': too many rejected cases \
                     ({accepted}/{cases} accepted after {attempts} attempts)"
                );
            }
            let case_seed = seed.wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(case_seed);
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{name}' failed at case {accepted} (seed {case_seed:#x}):\n{msg}"
                ),
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, just, prop, ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}:\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                lhs,
                rhs
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}: both sides: {:?}",
                file!(),
                line!(),
                lhs
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ($($pat:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config = $cfg;
            $crate::runner::run(stringify!($name), &config, |rng| {
                $crate::__proptest_bind!(rng; $($params)*);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

/// Binds each proptest parameter (`pat in strategy` or `pat: Type`, the
/// latter meaning `any::<Type>()`) to a generated value.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $pat:ident in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:ident in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:ident : $ty:ty) => {
        let $pat = $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };
    ($rng:ident; $pat:ident : $ty:ty, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}
