//! The data owner (Figure 3): signs tables, maintains them under updates.
//!
//! For a table sorted on `K` the owner inserts the two delimiters
//! (Section 3.1), computes `g(r)` for every entry (formula (3), Figure 7)
//! and signs each chain link `h(g(r_{i-1}) | g(r_i) | g(r_{i+1}))`
//! (formula (1)), with the domain edge anchors `h(L)` / `h(U)` flanking the
//! delimiters.
//!
//! Updates have the locality the paper highlights in Section 6.3: an
//! insert/delete/modify recomputes **three (or two) signatures** — the
//! record's own and its immediate neighbours' — instead of a root path of
//! digests as in Merkle-tree schemes. Signatures are additionally stored in
//! a [`BPlusTree`] keyed by `(K, replica)`; its node-visit counters feed
//! the `sec63_updates` experiment.

use crate::domain::Domain;
use crate::gdigest::{
    attr_tree, direction_commitment, g_of_delimiter, link_digest, Direction, GDigest,
};
use crate::repr::Radix;
use crate::scheme::{Mode, SchemeConfig};
use adp_crypto::{Digest, Hasher, Keypair, PublicKey, Signature};
use adp_relation::{BPlusTree, Record, Schema, SchemaError, Table};
use rand::RngCore;
use std::fmt;

/// Errors raised by owner operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OwnerError {
    /// A key value lies outside the legal key interval `[L+2, U-2]`.
    KeyOutOfDomain { key: i64 },
    /// The record does not match the table schema.
    Schema(SchemaError),
    /// The `(key, replica)` pair does not exist.
    NoSuchRecord { key: i64, replica: u32 },
    /// A dissemination payload carried the wrong number of signatures for
    /// the table (`n + 2` expected).
    SignatureCount { expected: usize, got: usize },
    /// A batch [`Mutation::Update`] changed the key attribute without being
    /// decomposed into delete + insert (only [`Owner::apply_batch`]
    /// canonicalizes; replayed logs must already be canonical).
    UpdateChangesKey { key: i64, new_key: i64 },
    /// A replayed batch's re-signed positions disagree with the chain
    /// positions the mutations actually dirtied.
    ResignSetMismatch { expected: usize, got: usize },
    /// A replayed signature failed verification against the recomputed link
    /// digest — the log record was tampered with or corrupted.
    ResignatureInvalid { chain_pos: usize },
}

impl fmt::Display for OwnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnerError::KeyOutOfDomain { key } => {
                write!(f, "key {key} outside the domain's legal key interval")
            }
            OwnerError::Schema(e) => write!(f, "schema violation: {e}"),
            OwnerError::NoSuchRecord { key, replica } => {
                write!(f, "no record with key {key}, replica {replica}")
            }
            OwnerError::SignatureCount { expected, got } => {
                write!(f, "expected {expected} signatures for the table, got {got}")
            }
            OwnerError::UpdateChangesKey { key, new_key } => {
                write!(
                    f,
                    "batch update changes the key attribute ({key} -> {new_key}); \
                     canonical batches decompose key changes into delete + insert"
                )
            }
            OwnerError::ResignSetMismatch { expected, got } => {
                write!(
                    f,
                    "replayed batch re-signs the wrong positions: \
                     {expected} dirtied, {got} provided"
                )
            }
            OwnerError::ResignatureInvalid { chain_pos } => {
                write!(
                    f,
                    "replayed signature at chain position {chain_pos} does not \
                     verify against the recomputed link digest"
                )
            }
        }
    }
}

impl std::error::Error for OwnerError {}

impl From<SchemaError> for OwnerError {
    fn from(e: SchemaError) -> Self {
        OwnerError::Schema(e)
    }
}

/// What the owner publishes for users (over an authenticated channel, e.g.
/// a public-key certificate): everything needed to verify results.
#[derive(Clone, Debug)]
pub struct Certificate {
    pub table_name: String,
    pub schema: Schema,
    pub domain: Domain,
    pub config: SchemeConfig,
    pub public_key: PublicKey,
}

/// Per-chain-position authentication material.
#[derive(Clone, Debug)]
pub struct SignedEntry {
    /// The `g` triple of this entry.
    pub g: GDigest,
    /// Optimized mode: the rep-MHT roots (up, down) the publisher hands to
    /// users for Figure-8b entry verification.
    pub roots: Option<(Digest, Digest)>,
    /// `sig(r_i)` over the link digest.
    pub signature: Signature,
}

/// Cost accounting for one update operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Signatures recomputed (3 for insert/modify, 2 for delete).
    pub signatures_recomputed: usize,
    /// `g` digests recomputed (1 for insert/modify, 0 for delete).
    pub g_recomputed: usize,
    /// Leaf nodes of the signature B+-tree touched.
    pub index_leaves_touched: u64,
    /// Total B+-tree nodes touched.
    pub index_nodes_touched: u64,
}

/// One owner-side mutation of a signed table, as carried in an ingest
/// batch and in `adp-store` update-log records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert a new record (replica assigned automatically).
    Insert(Record),
    /// Delete the record identified by `(key, replica)`.
    Delete {
        /// Key attribute value.
        key: i64,
        /// Replica disambiguator.
        replica: u32,
    },
    /// Replace the non-key attributes of `(key, replica)`. A replacement
    /// record with a *different* key is decomposed by
    /// [`Owner::apply_batch`] into delete + insert.
    Update {
        /// Key attribute value of the record being replaced.
        key: i64,
        /// Replica disambiguator.
        replica: u32,
        /// The replacement record.
        record: Record,
    },
}

/// Outcome of [`Owner::apply_batch`]: the canonicalized mutations as
/// applied plus the signatures recomputed for the affected chain
/// neighborhoods — exactly what an update-log record must carry so a
/// publisher can replay the batch without the signing key.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// The mutations in canonical application order (deletes, then
    /// in-place updates, then inserts, each sorted by key). Log these, not
    /// the caller's original vector.
    pub ops: Vec<Mutation>,
    /// `(chain position, new signature)` for every re-signed position, in
    /// chain order. Positions refer to the post-batch chain.
    pub resigned: Vec<(u32, Signature)>,
    /// Signatures recomputed — `O(k)` neighborhoods, never `O(n)`.
    pub signatures_recomputed: usize,
    /// `g` digests recomputed (one per insert/update).
    pub g_recomputed: usize,
}

/// A table signed for publishing: data + signature chain + signature index.
///
/// Cloning copies the table, the chain entries, and the signature index —
/// no cryptography is redone. `adp-store` and the live-reloading server
/// clone a signed table to stage a batch before atomically swapping it in.
#[derive(Clone, Debug)]
pub struct SignedTable {
    table: Table,
    domain: Domain,
    config: SchemeConfig,
    hasher: Hasher,
    radix: Option<Radix>,
    /// Chain positions `0..=n+1`; position 0 and n+1 are the delimiters.
    entries: Vec<SignedEntry>,
    /// Signatures keyed by `(K, replica)` in B+-tree leaves (Section 6.3).
    sig_index: BPlusTree<Signature>,
    public_key: PublicKey,
}

impl SignedTable {
    /// The underlying table (real records only).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The key domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// The hasher.
    pub fn hasher(&self) -> &Hasher {
        &self.hasher
    }

    /// The radix (None in conceptual mode).
    pub fn radix(&self) -> Option<&Radix> {
        self.radix.as_ref()
    }

    /// Number of real records `n`.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table has no real records.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Chain entry at position `0..=n+1`.
    pub fn entry(&self, chain_pos: usize) -> &SignedEntry {
        &self.entries[chain_pos]
    }

    /// Number of chain positions (`n + 2`).
    pub fn chain_len(&self) -> usize {
        self.entries.len()
    }

    /// Key at a chain position (delimiters included).
    pub fn key_at(&self, chain_pos: usize) -> i64 {
        if chain_pos == 0 {
            self.domain.left_delimiter()
        } else if chain_pos == self.entries.len() - 1 {
            self.domain.right_delimiter()
        } else {
            self.table
                .row(chain_pos - 1)
                .record
                .key(self.table.schema())
        }
    }

    /// `(key, replica)` at a chain position.
    pub fn tree_key_at(&self, chain_pos: usize) -> (i64, u32) {
        if chain_pos == 0 {
            (self.domain.left_delimiter(), 0)
        } else if chain_pos == self.entries.len() - 1 {
            (self.domain.right_delimiter(), 0)
        } else {
            let row = self.table.row(chain_pos - 1);
            (row.record.key(self.table.schema()), row.replica)
        }
    }

    /// The signature B+-tree (for instrumentation).
    pub fn sig_index(&self) -> &BPlusTree<Signature> {
        &self.sig_index
    }

    /// The owner's public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }

    /// Bytes of authentication material the owner ships to the publisher:
    /// `n + 2` signatures (everything else is recomputable from the data).
    pub fn dissemination_size(&self) -> usize {
        self.entries.iter().map(|e| e.signature.byte_len()).sum()
    }

    /// The raw `g` bytes at a chain position (used by the publisher as
    /// opaque neighbour context).
    pub fn g_bytes(&self, chain_pos: usize) -> Vec<u8> {
        self.entries[chain_pos].g.to_bytes()
    }

    /// The link digest signed at `chain_pos` (recomputed from current `g`s).
    fn link_at(&self, chain_pos: usize) -> Digest {
        let prev = if chain_pos == 0 {
            crate::gdigest::edge_digest(&self.hasher, self.domain.l())
                .as_bytes()
                .to_vec()
        } else {
            self.entries[chain_pos - 1].g.to_bytes()
        };
        let next = if chain_pos == self.entries.len() - 1 {
            crate::gdigest::edge_digest(&self.hasher, self.domain.u())
                .as_bytes()
                .to_vec()
        } else {
            self.entries[chain_pos + 1].g.to_bytes()
        };
        link_digest(
            &self.hasher,
            &prev,
            &self.entries[chain_pos].g.to_bytes(),
            &next,
        )
    }

    /// Internal consistency check: every stored signature verifies against
    /// the recomputed link digest. `O(n)` signature verifications — test
    /// and debugging helper.
    pub fn audit(&self) -> bool {
        (0..self.entries.len()).all(|i| {
            self.public_key
                .verify(&self.hasher, &self.link_at(i), &self.entries[i].signature)
        })
    }

    /// `g` and rep-roots for one record, from this table's scheme state.
    fn materialize_record(&self, record: &Record) -> (GDigest, Option<(Digest, Digest)>) {
        let schema = self.table.schema();
        let key = record.key(schema);
        let up = direction_commitment(
            &self.hasher,
            &self.config,
            self.radix.as_ref(),
            &self.domain,
            key,
            Direction::Up,
        );
        let down = direction_commitment(
            &self.hasher,
            &self.config,
            self.radix.as_ref(),
            &self.domain,
            key,
            Direction::Down,
        );
        let attrs = attr_tree(&self.hasher, schema, record).root();
        let roots = match (up.rep_tree.as_ref(), down.rep_tree.as_ref()) {
            (Some(u), Some(d)) => Some((u.root(), d.root())),
            _ => None,
        };
        (
            GDigest {
                up: up.component,
                down: down.component,
                attrs,
            },
            roots,
        )
    }

    /// Current chain position of a `(key, replica)` tree key (delimiters
    /// included), or `None` if it no longer exists.
    fn chain_pos_of(&self, tree_key: (i64, u32)) -> Option<usize> {
        if tree_key == (self.domain.left_delimiter(), 0) {
            return Some(0);
        }
        if tree_key == (self.domain.right_delimiter(), 0) {
            return Some(self.entries.len() - 1);
        }
        self.table
            .position_of(tree_key.0, tree_key.1)
            .map(|p| p + 1)
    }

    /// Schema-validates every record carried by the batch (must run before
    /// anything extracts a key from a record).
    fn prevalidate_records(&self, ops: &[Mutation]) -> Result<(), OwnerError> {
        let schema = self.table.schema();
        for op in ops {
            match op {
                Mutation::Insert(record) | Mutation::Update { record, .. } => {
                    schema.validate(record.values())?;
                }
                Mutation::Delete { .. } => {}
            }
        }
        Ok(())
    }

    /// Validates a (canonical-order) batch against the pre-batch state so
    /// staging cannot fail halfway: keys in domain, delete/update targets
    /// present exactly once, no key-changing updates.
    fn validate_batch(&self, ops: &[Mutation]) -> Result<(), OwnerError> {
        let schema = self.table.schema();
        let mut removed: std::collections::BTreeSet<(i64, u32)> = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                Mutation::Insert(record) => {
                    let key = record.key(schema);
                    if !self.domain.contains_key(key) {
                        return Err(OwnerError::KeyOutOfDomain { key });
                    }
                }
                Mutation::Delete { key, replica } => {
                    if self.table.position_of(*key, *replica).is_none()
                        || !removed.insert((*key, *replica))
                    {
                        return Err(OwnerError::NoSuchRecord {
                            key: *key,
                            replica: *replica,
                        });
                    }
                }
                Mutation::Update {
                    key,
                    replica,
                    record,
                } => {
                    let new_key = record.key(schema);
                    if new_key != *key {
                        return Err(OwnerError::UpdateChangesKey { key: *key, new_key });
                    }
                    if self.table.position_of(*key, *replica).is_none()
                        || removed.contains(&(*key, *replica))
                    {
                        return Err(OwnerError::NoSuchRecord {
                            key: *key,
                            replica: *replica,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies the structural half of a batch — table rows, chain entries,
    /// fresh `g` digests (signatures untouched except placeholders for
    /// inserts) — and returns `(dirty chain positions, g recomputed)`.
    /// Dirty positions are tracked by `(key, replica)` identity so earlier
    /// mutations stay correct as later ones shift positions.
    fn stage_batch(&mut self, ops: &[Mutation]) -> Result<(Vec<usize>, usize), OwnerError> {
        let mut dirty: std::collections::BTreeSet<(i64, u32)> = std::collections::BTreeSet::new();
        let mut g_recomputed = 0usize;
        for op in ops {
            match op {
                Mutation::Insert(record) => {
                    let (g, roots) = self.materialize_record(record);
                    g_recomputed += 1;
                    let pos = self.table.insert(record.clone())?;
                    let cp = pos + 1;
                    // Placeholder replaced when the position is re-signed.
                    let placeholder = self.entries[0].signature.clone();
                    self.entries.insert(
                        cp,
                        SignedEntry {
                            g,
                            roots,
                            signature: placeholder,
                        },
                    );
                    for p in [cp - 1, cp, cp + 1] {
                        dirty.insert(self.tree_key_at(p));
                    }
                }
                Mutation::Delete { key, replica } => {
                    let Some(pos) = self.table.position_of(*key, *replica) else {
                        return Err(OwnerError::NoSuchRecord {
                            key: *key,
                            replica: *replica,
                        });
                    };
                    self.table.remove_at(pos);
                    let cp = pos + 1;
                    self.entries.remove(cp);
                    self.sig_index.remove((*key, *replica));
                    dirty.remove(&(*key, *replica));
                    dirty.insert(self.tree_key_at(cp - 1));
                    dirty.insert(self.tree_key_at(cp));
                }
                Mutation::Update {
                    key,
                    replica,
                    record,
                } => {
                    let Some(pos) = self.table.position_of(*key, *replica) else {
                        return Err(OwnerError::NoSuchRecord {
                            key: *key,
                            replica: *replica,
                        });
                    };
                    let (g, roots) = self.materialize_record(record);
                    g_recomputed += 1;
                    self.table.update_in_place(pos, record.clone())?;
                    let cp = pos + 1;
                    self.entries[cp].g = g;
                    self.entries[cp].roots = roots;
                    for p in [cp - 1, cp, cp + 1] {
                        dirty.insert(self.tree_key_at(p));
                    }
                }
            }
        }
        let mut positions: Vec<usize> = dirty
            .iter()
            .filter_map(|&tk| self.chain_pos_of(tk))
            .collect();
        positions.sort_unstable();
        Ok((positions, g_recomputed))
    }

    /// Link digests for the given (sorted) chain positions, computed with
    /// the bulk [`crate::gdigest::link_digests_run`] sliding window over
    /// each contiguous run — every `g` in a run is serialized once.
    fn links_for(&self, positions: &[usize]) -> Vec<Digest> {
        let edge_l = crate::gdigest::edge_digest(&self.hasher, self.domain.l())
            .as_bytes()
            .to_vec();
        let edge_u = crate::gdigest::edge_digest(&self.hasher, self.domain.u())
            .as_bytes()
            .to_vec();
        let last = self.entries.len() - 1;
        let mut out = Vec::with_capacity(positions.len());
        let mut i = 0;
        while i < positions.len() {
            let mut j = i;
            while j + 1 < positions.len() && positions[j + 1] == positions[j] + 1 {
                j += 1;
            }
            let (a, b) = (positions[i], positions[j]);
            let prev = if a == 0 {
                edge_l.clone()
            } else {
                self.entries[a - 1].g.to_bytes()
            };
            let next = if b == last {
                edge_u.clone()
            } else {
                self.entries[b + 1].g.to_bytes()
            };
            let encoded: Vec<Vec<u8>> =
                self.entries[a..=b].iter().map(|e| e.g.to_bytes()).collect();
            let mut run: Vec<&[u8]> = Vec::with_capacity(encoded.len() + 2);
            run.push(&prev);
            run.extend(encoded.iter().map(Vec::as_slice));
            run.push(&next);
            out.extend(crate::gdigest::link_digests_run(&self.hasher, &run));
            i = j + 1;
        }
        out
    }

    /// Publisher-side batch application: replays a logged batch *without
    /// the signing key*, splicing in the owner-provided signatures after
    /// verifying each against the link digest recomputed from local state.
    /// A tampered log record — flipped payload bytes, a forged signature,
    /// a wrong position set — is rejected with a typed error.
    ///
    /// `ops` must be in canonical order (as emitted by
    /// [`Owner::apply_batch`]); `resigned` must list `(chain position,
    /// signature)` in chain order for exactly the dirtied positions.
    ///
    /// On error the table may be partially mutated: replay into a clone
    /// and swap on success (as `adp-store` does).
    pub fn replay_batch(
        &mut self,
        ops: &[Mutation],
        resigned: &[(u32, Signature)],
    ) -> Result<(), OwnerError> {
        self.prevalidate_records(ops)?;
        self.validate_batch(ops)?;
        let (positions, _) = self.stage_batch(ops)?;
        if resigned.len() != positions.len()
            || resigned
                .iter()
                .zip(&positions)
                .any(|((p, _), &want)| *p as usize != want)
        {
            return Err(OwnerError::ResignSetMismatch {
                expected: positions.len(),
                got: resigned.len(),
            });
        }
        let links = self.links_for(&positions);
        for ((pos, sig), link) in resigned.iter().zip(&links) {
            if !self.public_key.verify(&self.hasher, link, sig) {
                return Err(OwnerError::ResignatureInvalid {
                    chain_pos: *pos as usize,
                });
            }
        }
        for (pos, sig) in resigned {
            let pos = *pos as usize;
            self.entries[pos].signature = sig.clone();
            self.sig_index.insert(self.tree_key_at(pos), sig.clone());
        }
        Ok(())
    }
}

/// The data owner: holds the signing keypair.
pub struct Owner {
    keypair: Keypair,
}

impl SignedTable {
    /// Publisher-side reconstruction from disseminated parts: the owner
    /// ships only the data and the `n + 2` signatures (Figure 3); the
    /// publisher recomputes every digest itself and — since it should not
    /// serve data it cannot prove — audits the chain against the owner's
    /// public key.
    ///
    /// `signatures` must cover chain positions `0..=n+1` in order.
    pub fn from_parts(
        table: Table,
        domain: Domain,
        config: SchemeConfig,
        signatures: Vec<Signature>,
        public_key: PublicKey,
    ) -> Result<Self, OwnerError> {
        let hasher = config.hasher();
        let radix = match config.mode {
            Mode::Conceptual => None,
            Mode::Optimized { base } => Some(Radix::for_width(base, domain.width())),
        };
        for row in table.rows() {
            let k = row.record.key(table.schema());
            if !domain.contains_key(k) {
                return Err(OwnerError::KeyOutOfDomain { key: k });
            }
        }
        let n = table.len();
        if signatures.len() != n + 2 {
            return Err(OwnerError::SignatureCount {
                expected: n + 2,
                got: signatures.len(),
            });
        }
        let schema = table.schema().clone();
        let mut entries = Vec::with_capacity(n + 2);
        for (pos, signature) in signatures.into_iter().enumerate() {
            let (g, roots) = if pos == 0 {
                (
                    g_of_delimiter(
                        &hasher,
                        &config,
                        radix.as_ref(),
                        &domain,
                        domain.left_delimiter(),
                    ),
                    None,
                )
            } else if pos == n + 1 {
                (
                    g_of_delimiter(
                        &hasher,
                        &config,
                        radix.as_ref(),
                        &domain,
                        domain.right_delimiter(),
                    ),
                    None,
                )
            } else {
                let record = &table.row(pos - 1).record;
                let key = record.key(&schema);
                let up = direction_commitment(
                    &hasher,
                    &config,
                    radix.as_ref(),
                    &domain,
                    key,
                    Direction::Up,
                );
                let down = direction_commitment(
                    &hasher,
                    &config,
                    radix.as_ref(),
                    &domain,
                    key,
                    Direction::Down,
                );
                let attrs = attr_tree(&hasher, &schema, record).root();
                let roots = match (up.rep_tree.as_ref(), down.rep_tree.as_ref()) {
                    (Some(u), Some(d)) => Some((u.root(), d.root())),
                    _ => None,
                };
                (
                    GDigest {
                        up: up.component,
                        down: down.component,
                        attrs,
                    },
                    roots,
                )
            };
            entries.push(SignedEntry {
                g,
                roots,
                signature,
            });
        }
        let mut sig_index = BPlusTree::new(64);
        let mut st = SignedTable {
            table,
            domain,
            config,
            hasher,
            radix,
            entries,
            sig_index: BPlusTree::new(64),
            public_key,
        };
        for pos in 0..st.entries.len() {
            sig_index.insert(st.tree_key_at(pos), st.entries[pos].signature.clone());
        }
        st.sig_index = sig_index;
        Ok(st)
    }
}

impl Owner {
    /// Creates an owner with a fresh RSA keypair of `bits` bits
    /// (1024 matches the paper's `M_sign`; tests use 512 for speed).
    pub fn new(bits: usize, rng: &mut dyn RngCore) -> Self {
        Owner {
            keypair: Keypair::generate(bits, rng),
        }
    }

    /// The owner's public key.
    pub fn public_key(&self) -> &PublicKey {
        self.keypair.public()
    }

    /// Computes `g` and rep-roots for one record.
    fn materialize(
        &self,
        hasher: &Hasher,
        config: &SchemeConfig,
        radix: Option<&Radix>,
        domain: &Domain,
        schema: &Schema,
        record: &Record,
    ) -> (GDigest, Option<(Digest, Digest)>) {
        let key = record.key(schema);
        let up = direction_commitment(hasher, config, radix, domain, key, Direction::Up);
        let down = direction_commitment(hasher, config, radix, domain, key, Direction::Down);
        let attrs = attr_tree(hasher, schema, record).root();
        let roots = match (up.rep_tree.as_ref(), down.rep_tree.as_ref()) {
            (Some(u), Some(d)) => Some((u.root(), d.root())),
            _ => None,
        };
        (
            GDigest {
                up: up.component,
                down: down.component,
                attrs,
            },
            roots,
        )
    }

    /// Signs a table for publishing. `O(n)` hash chains + `n + 2` RSA
    /// signatures; parallelized across available cores.
    pub fn sign_table(
        &self,
        table: Table,
        domain: Domain,
        config: SchemeConfig,
    ) -> Result<SignedTable, OwnerError> {
        let hasher = config.hasher();
        let radix = match config.mode {
            Mode::Conceptual => None,
            Mode::Optimized { base } => Some(Radix::for_width(base, domain.width())),
        };
        // Validate all keys before doing any crypto work.
        for row in table.rows() {
            let k = row.record.key(table.schema());
            if !domain.contains_key(k) {
                return Err(OwnerError::KeyOutOfDomain { key: k });
            }
        }

        let n = table.len();
        let schema = table.schema().clone();
        // Materialize g for all chain positions 0..=n+1, in parallel.
        type Material = (GDigest, Option<(Digest, Digest)>);
        let mut materials: Vec<Option<Material>> = vec![None; n + 2];
        let threads = std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(n + 2);
        let chunk = (n + 2).div_ceil(threads);
        std::thread::scope(|s| {
            for (t, slot_chunk) in materials.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let table = &table;
                let schema = &schema;
                let radix = radix.as_ref();
                let domain = &domain;
                let config = &config;
                let hasher = &hasher;
                s.spawn(move || {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let pos = start + off;
                        let mat = if pos == 0 {
                            let g = g_of_delimiter(
                                hasher,
                                config,
                                radix,
                                domain,
                                domain.left_delimiter(),
                            );
                            (g, None)
                        } else if pos == n + 1 {
                            let g = g_of_delimiter(
                                hasher,
                                config,
                                radix,
                                domain,
                                domain.right_delimiter(),
                            );
                            (g, None)
                        } else {
                            self.materialize(
                                hasher,
                                config,
                                radix,
                                domain,
                                schema,
                                &table.row(pos - 1).record,
                            )
                        };
                        *slot = Some(mat);
                    }
                });
            }
        });
        let materials: Vec<Material> = materials.into_iter().map(Option::unwrap).collect();

        // Link digests over the whole chain in one bulk pass: each `g` is
        // serialized once and the edge anchors flank the run, instead of
        // re-encoding every neighbour triple.
        let edge_l = crate::gdigest::edge_digest(&hasher, domain.l())
            .as_bytes()
            .to_vec();
        let edge_u = crate::gdigest::edge_digest(&hasher, domain.u())
            .as_bytes()
            .to_vec();
        let encoded: Vec<Vec<u8>> = materials.iter().map(|(g, _)| g.to_bytes()).collect();
        let mut run: Vec<&[u8]> = Vec::with_capacity(n + 4);
        run.push(&edge_l);
        run.extend(encoded.iter().map(Vec::as_slice));
        run.push(&edge_u);
        let links: Vec<Digest> = crate::gdigest::link_digests_run(&hasher, &run);

        let mut signatures: Vec<Option<Signature>> = vec![None; n + 2];
        std::thread::scope(|s| {
            for (t, sig_chunk) in signatures.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let links = &links;
                let hasher = &hasher;
                let keypair = &self.keypair;
                s.spawn(move || {
                    for (off, slot) in sig_chunk.iter_mut().enumerate() {
                        *slot = Some(keypair.sign(hasher, &links[start + off]));
                    }
                });
            }
        });

        let entries: Vec<SignedEntry> = materials
            .into_iter()
            .zip(signatures)
            .map(|((g, roots), sig)| SignedEntry {
                g,
                roots,
                signature: sig.unwrap(),
            })
            .collect();

        // Populate the signature B+-tree.
        let mut sig_index = BPlusTree::new(64);
        let mut st = SignedTable {
            table,
            domain,
            config,
            hasher,
            radix,
            entries,
            sig_index: BPlusTree::new(64),
            public_key: self.keypair.public().clone(),
        };
        for pos in 0..st.entries.len() {
            sig_index.insert(st.tree_key_at(pos), st.entries[pos].signature.clone());
        }
        st.sig_index = sig_index;
        Ok(st)
    }

    /// Re-signs the given chain positions in place, updating the B+-tree.
    fn resign(&self, st: &mut SignedTable, positions: &[usize]) {
        for &pos in positions {
            let link = st.link_at(pos);
            let sig = self.keypair.sign(&st.hasher, &link);
            st.entries[pos].signature = sig.clone();
            st.sig_index.insert(st.tree_key_at(pos), sig);
        }
    }

    /// Inserts a record, re-signing the record and its two neighbours
    /// (Section 6.3: like updating a doubly-linked list).
    pub fn insert_record(
        &self,
        st: &mut SignedTable,
        record: Record,
    ) -> Result<UpdateReport, OwnerError> {
        let key = record.key(st.table.schema());
        if !st.domain.contains_key(key) {
            return Err(OwnerError::KeyOutOfDomain { key });
        }
        st.sig_index.stats().reset();
        let schema = st.table.schema().clone();
        let (g, roots) = self.materialize(
            &st.hasher,
            &st.config,
            st.radix.as_ref(),
            &st.domain,
            &schema,
            &record,
        );
        let pos = st.table.insert(record)?;
        let cp = pos + 1;
        // Placeholder signature replaced by resign() below.
        let placeholder = st.entries[0].signature.clone();
        st.entries.insert(
            cp,
            SignedEntry {
                g,
                roots,
                signature: placeholder,
            },
        );
        self.resign(st, &[cp - 1, cp, cp + 1]);
        Ok(UpdateReport {
            signatures_recomputed: 3,
            g_recomputed: 1,
            index_leaves_touched: st.sig_index.stats().leaves_visited(),
            index_nodes_touched: st.sig_index.stats().nodes_visited(),
        })
    }

    /// Deletes `(key, replica)`, re-signing the two now-adjacent
    /// neighbours.
    pub fn delete_record(
        &self,
        st: &mut SignedTable,
        key: i64,
        replica: u32,
    ) -> Result<UpdateReport, OwnerError> {
        let Some(pos) = st.table.position_of(key, replica) else {
            return Err(OwnerError::NoSuchRecord { key, replica });
        };
        st.sig_index.stats().reset();
        st.table.remove_at(pos);
        let cp = pos + 1;
        st.entries.remove(cp);
        st.sig_index.remove((key, replica));
        self.resign(st, &[cp - 1, cp]);
        Ok(UpdateReport {
            signatures_recomputed: 2,
            g_recomputed: 0,
            index_leaves_touched: st.sig_index.stats().leaves_visited(),
            index_nodes_touched: st.sig_index.stats().nodes_visited(),
        })
    }

    /// Replaces the non-key attributes of `(key, replica)`, re-signing the
    /// record and its two neighbours.
    pub fn update_record(
        &self,
        st: &mut SignedTable,
        key: i64,
        replica: u32,
        new_record: Record,
    ) -> Result<UpdateReport, OwnerError> {
        let Some(pos) = st.table.position_of(key, replica) else {
            return Err(OwnerError::NoSuchRecord { key, replica });
        };
        if new_record.key(st.table.schema()) != key {
            // Key changes relocate the record: delete + insert.
            let d = self.delete_record(st, key, replica)?;
            let i = self.insert_record(st, new_record)?;
            return Ok(UpdateReport {
                signatures_recomputed: d.signatures_recomputed + i.signatures_recomputed,
                g_recomputed: d.g_recomputed + i.g_recomputed,
                index_leaves_touched: d.index_leaves_touched + i.index_leaves_touched,
                index_nodes_touched: d.index_nodes_touched + i.index_nodes_touched,
            });
        }
        st.sig_index.stats().reset();
        let schema = st.table.schema().clone();
        let (g, roots) = self.materialize(
            &st.hasher,
            &st.config,
            st.radix.as_ref(),
            &st.domain,
            &schema,
            &new_record,
        );
        st.table.update_in_place(pos, new_record)?;
        let cp = pos + 1;
        st.entries[cp].g = g;
        st.entries[cp].roots = roots;
        self.resign(st, &[cp - 1, cp, cp + 1]);
        Ok(UpdateReport {
            signatures_recomputed: 3,
            g_recomputed: 1,
            index_leaves_touched: st.sig_index.stats().leaves_visited(),
            index_nodes_touched: st.sig_index.stats().nodes_visited(),
        })
    }

    /// Incremental bulk ingest: applies a batch of `k` mutations to an
    /// `n`-row signed table, re-signing only the `O(k)` affected chain
    /// neighborhoods (each mutation dirties itself and its two neighbors;
    /// adjacent mutations share neighborhoods). Link digests are computed
    /// with the bulk `hash_triple_windows` sliding window per contiguous
    /// dirty run — the same kernel `sign_table` uses for the full chain.
    ///
    /// The batch is canonicalized first — key-changing updates decompose
    /// into delete + insert, then deletes, in-place updates, and inserts
    /// apply in that order, each sorted by key — and the canonical
    /// [`BatchReport::ops`] plus [`BatchReport::resigned`] are exactly what
    /// an update-log record must carry for [`SignedTable::replay_batch`].
    ///
    /// This is the owner-side path of the Section 6.3 churn experiment:
    /// `baseline_compare` drives batches of scattered updates through
    /// here into an `adp-store` log and tabulates the per-batch
    /// re-signing and log traffic against the baselines' update costs
    /// (`docs/EVALUATION.md` §"Update churn").
    ///
    /// Validation happens before any mutation, so an `Err` leaves the
    /// table untouched.
    pub fn apply_batch(
        &self,
        st: &mut SignedTable,
        ops: Vec<Mutation>,
    ) -> Result<BatchReport, OwnerError> {
        st.prevalidate_records(&ops)?;
        let ops = canonicalize_batch(st.table.schema(), ops);
        st.validate_batch(&ops)?;
        let (positions, g_recomputed) = st.stage_batch(&ops)?;
        let links = st.links_for(&positions);
        let mut resigned = Vec::with_capacity(positions.len());
        for (&pos, link) in positions.iter().zip(&links) {
            let sig = self.keypair.sign(&st.hasher, link);
            st.entries[pos].signature = sig.clone();
            st.sig_index.insert(st.tree_key_at(pos), sig.clone());
            resigned.push((pos as u32, sig));
        }
        Ok(BatchReport {
            ops,
            signatures_recomputed: resigned.len(),
            g_recomputed,
            resigned,
        })
    }

    /// Issues the user-facing certificate for a signed table.
    pub fn certificate(&self, st: &SignedTable) -> Certificate {
        Certificate {
            table_name: st.table.name().to_string(),
            schema: st.table.schema().clone(),
            domain: st.domain,
            config: st.config,
            public_key: self.keypair.public().clone(),
        }
    }

    /// Publishes a logical table under several sort orders: one
    /// [`SignedTable`] per listed key attribute, each with its own domain
    /// (the paper's Section 6.3 notes this is analogous to creating one
    /// B+-tree per indexed attribute; its future work discusses
    /// multi-dimensional schemes to avoid it).
    pub fn sign_sort_orders(
        &self,
        table: &Table,
        orders: &[(&str, Domain)],
        config: SchemeConfig,
    ) -> Result<Vec<SignedTable>, OwnerError> {
        let mut out = Vec::with_capacity(orders.len());
        for (attr, domain) in orders {
            let schema = Schema::new(table.schema().columns().to_vec(), attr);
            let records: Vec<Record> = table.rows().iter().map(|r| r.record.clone()).collect();
            let renamed = format!("{}@{attr}", table.name());
            let sorted = Table::from_records(renamed, schema, records)?;
            out.push(self.sign_table(sorted, *domain, config)?);
        }
        Ok(out)
    }
}

/// Canonicalizes a batch: key-changing updates decompose into
/// delete + insert; then deletes, in-place updates, and inserts apply in
/// that order, each sorted by `(key, replica)` (inserts by key, stable for
/// duplicates). Records must already be schema-validated.
fn canonicalize_batch(schema: &Schema, ops: Vec<Mutation>) -> Vec<Mutation> {
    let mut deletes = Vec::new();
    let mut updates = Vec::new();
    let mut inserts = Vec::new();
    for op in ops {
        match op {
            Mutation::Update {
                key,
                replica,
                record,
            } if record.key(schema) != key => {
                deletes.push(Mutation::Delete { key, replica });
                inserts.push(Mutation::Insert(record));
            }
            Mutation::Delete { .. } => deletes.push(op),
            Mutation::Update { .. } => updates.push(op),
            Mutation::Insert(_) => inserts.push(op),
        }
    }
    let target = |op: &Mutation| match op {
        Mutation::Delete { key, replica } | Mutation::Update { key, replica, .. } => {
            (*key, *replica)
        }
        Mutation::Insert(_) => unreachable!("partitioned above"),
    };
    deletes.sort_by_key(target);
    updates.sort_by_key(target);
    inserts.sort_by_key(|op| match op {
        Mutation::Insert(record) => record.key(schema),
        _ => unreachable!("partitioned above"),
    });
    let mut out = deletes;
    out.extend(updates);
    out.extend(inserts);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{Column, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    pub(crate) fn test_owner() -> &'static Owner {
        static OWNER: OnceLock<Owner> = OnceLock::new();
        OWNER.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x0B11);
            Owner::new(512, &mut rng)
        })
    }

    fn emp_schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Int),
            ],
            "salary",
        )
    }

    fn figure1_table() -> Table {
        let mut t = Table::new("emp", emp_schema());
        for (id, name, sal, dept) in [
            (5i64, "A", 2000i64, 1i64),
            (2, "C", 3500, 2),
            (1, "D", 8010, 1),
            (4, "B", 12100, 3),
            (3, "E", 25000, 2),
        ] {
            t.insert(Record::new(vec![
                Value::Int(id),
                Value::from(name),
                Value::Int(sal),
                Value::Int(dept),
            ]))
            .unwrap();
        }
        t
    }

    fn rec(id: i64, sal: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::from("X"),
            Value::Int(sal),
            Value::Int(1),
        ])
    }

    #[test]
    fn sign_and_audit() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(st.chain_len(), 7);
        assert_eq!(st.key_at(0), 1);
        assert_eq!(st.key_at(6), 99_999);
        assert_eq!(st.key_at(1), 2000);
        assert!(st.audit());
        assert_eq!(st.sig_index().len(), 7);
    }

    #[test]
    fn sign_empty_table() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                Table::new("empty", emp_schema()),
                Domain::new(0, 1_000),
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(st.chain_len(), 2);
        assert!(st.audit());
    }

    #[test]
    fn conceptual_mode_sign() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::conceptual(),
            )
            .unwrap();
        assert!(st.audit());
        assert!(st.entry(1).roots.is_none());
    }

    #[test]
    fn out_of_domain_key_rejected() {
        let owner = test_owner();
        let err = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 10_000),
                SchemeConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, OwnerError::KeyOutOfDomain { key: 12_100 }));
    }

    #[test]
    fn insert_resigns_three() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let report = owner.insert_record(&mut st, rec(9, 5_000)).unwrap();
        assert_eq!(report.signatures_recomputed, 3);
        assert_eq!(report.g_recomputed, 1);
        assert_eq!(st.len(), 6);
        assert!(st.audit(), "chain must remain verifiable after insert");
        // Inserted between 3500 and 8010.
        assert_eq!(st.key_at(3), 5_000);
    }

    #[test]
    fn insert_at_extremes() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        owner.insert_record(&mut st, rec(9, 2)).unwrap(); // smallest legal key
        owner.insert_record(&mut st, rec(10, 99_998)).unwrap(); // largest legal key
        assert!(st.audit());
        assert_eq!(st.key_at(1), 2);
        assert_eq!(st.key_at(st.chain_len() - 2), 99_998);
    }

    #[test]
    fn insert_duplicate_key_gets_replica() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        owner.insert_record(&mut st, rec(9, 3500)).unwrap();
        assert!(st.audit());
        assert_eq!(st.tree_key_at(2), (3500, 0));
        assert_eq!(st.tree_key_at(3), (3500, 1));
    }

    #[test]
    fn delete_resigns_two() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let report = owner.delete_record(&mut st, 8010, 0).unwrap();
        assert_eq!(report.signatures_recomputed, 2);
        assert_eq!(st.len(), 4);
        assert!(st.audit(), "chain must remain verifiable after delete");
        assert!(matches!(
            owner.delete_record(&mut st, 8010, 0),
            Err(OwnerError::NoSuchRecord { .. })
        ));
    }

    #[test]
    fn delete_first_and_last() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        owner.delete_record(&mut st, 2000, 0).unwrap();
        owner.delete_record(&mut st, 25_000, 0).unwrap();
        assert!(st.audit());
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn update_in_place_resigns_three() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let new_rec = Record::new(vec![
            Value::Int(1),
            Value::from("D2"),
            Value::Int(8010),
            Value::Int(7),
        ]);
        let report = owner.update_record(&mut st, 8010, 0, new_rec).unwrap();
        assert_eq!(report.signatures_recomputed, 3);
        assert!(st.audit());
        assert_eq!(st.table().row(2).record.get(1), &Value::from("D2"));
    }

    #[test]
    fn update_with_key_change_relocates() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let report = owner
            .update_record(&mut st, 8010, 0, rec(1, 30_000))
            .unwrap();
        assert_eq!(report.signatures_recomputed, 5); // 2 delete + 3 insert
        assert!(st.audit());
        assert_eq!(st.key_at(st.chain_len() - 2), 30_000);
    }

    #[test]
    fn update_locality_in_index() {
        // Section 6.3: updates should touch very few B+-tree leaves.
        let owner = test_owner();
        let mut t = Table::new("big", emp_schema());
        for i in 0..500i64 {
            t.insert(rec(i, 10 + i * 3)).unwrap();
        }
        let mut st = owner
            .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
            .unwrap();
        let report = owner
            .update_record(&mut st, 10 + 250 * 3, 0, rec(250, 10 + 250 * 3))
            .unwrap();
        // 3 index writes, each descending height-many nodes; leaves should
        // be a small constant, not O(n) or O(log n)·digest-path like MHTs.
        assert!(report.index_leaves_touched <= 6, "{report:?}");
    }

    #[test]
    fn sort_orders_publish() {
        let owner = test_owner();
        let t = figure1_table();
        let signed = owner
            .sign_sort_orders(
                &t,
                &[
                    ("salary", Domain::new(0, 100_000)),
                    ("dept", Domain::new(-10, 100)),
                ],
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(signed.len(), 2);
        assert!(signed.iter().all(SignedTable::audit));
        assert_eq!(signed[1].table().schema().key_name(), "dept");
        // The dept-sorted chain orders by dept: 1,1,2,2,3.
        assert_eq!(signed[1].key_at(1), 1);
        assert_eq!(signed[1].key_at(5), 3);
    }

    #[test]
    fn certificate_carries_scheme() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let cert = owner.certificate(&st);
        assert_eq!(cert.table_name, "emp");
        assert_eq!(cert.domain, *st.domain());
        assert_eq!(&cert.public_key, st.public_key());
    }

    #[test]
    fn dissemination_size_is_signatures_only() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(st.dissemination_size(), 7 * 64);
    }

    fn sig_bytes_by_key(st: &SignedTable) -> Vec<((i64, u32), Vec<u8>)> {
        (0..st.chain_len())
            .map(|p| (st.tree_key_at(p), st.entry(p).signature.to_bytes()))
            .collect()
    }

    #[test]
    fn apply_batch_mixed_mutations_audit() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let report = owner
            .apply_batch(
                &mut st,
                vec![
                    Mutation::Insert(rec(9, 5_000)),
                    Mutation::Delete {
                        key: 2_000,
                        replica: 0,
                    },
                    Mutation::Update {
                        key: 25_000,
                        replica: 0,
                        record: rec(3, 25_000),
                    },
                    // Key change: decomposed into delete + insert.
                    Mutation::Update {
                        key: 12_100,
                        replica: 0,
                        record: rec(4, 60_000),
                    },
                ],
            )
            .unwrap();
        assert!(st.audit(), "chain must verify after a mixed batch");
        assert_eq!(st.len(), 5);
        assert_eq!(report.g_recomputed, 3); // two inserts + one in-place update
        assert_eq!(report.ops.len(), 5); // key change decomposed
                                         // Canonical order: deletes first.
        assert!(matches!(report.ops[0], Mutation::Delete { .. }));
        assert_eq!(st.key_at(st.chain_len() - 2), 60_000);
        assert_eq!(st.sig_index().len(), st.chain_len());
    }

    #[test]
    fn apply_batch_matches_sequential_updates_byte_for_byte() {
        // FDH-RSA signing is deterministic, so the batch path and the
        // one-at-a-time path must land on identical signature bytes.
        let owner = test_owner();
        let signed = |t: Table| {
            owner
                .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
                .unwrap()
        };
        let mut batch_st = signed(figure1_table());
        let mut seq_st = signed(figure1_table());

        let report = owner
            .apply_batch(
                &mut batch_st,
                vec![
                    Mutation::Insert(rec(9, 5_000)),
                    Mutation::Insert(rec(10, 5_500)),
                    Mutation::Delete {
                        key: 8_010,
                        replica: 0,
                    },
                ],
            )
            .unwrap();
        // Canonical order is deletes then inserts by key.
        owner.delete_record(&mut seq_st, 8_010, 0).unwrap();
        owner.insert_record(&mut seq_st, rec(9, 5_000)).unwrap();
        owner.insert_record(&mut seq_st, rec(10, 5_500)).unwrap();

        assert_eq!(sig_bytes_by_key(&batch_st), sig_bytes_by_key(&seq_st));
        assert!(report.signatures_recomputed < batch_st.chain_len());
    }

    #[test]
    fn apply_batch_resigns_o_k_not_o_n() {
        let owner = test_owner();
        let mut t = Table::new("big", emp_schema());
        for i in 0..200i64 {
            t.insert(rec(i, 100 + i * 37)).unwrap();
        }
        let mut st = owner
            .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
            .unwrap();
        let before = sig_bytes_by_key(&st);
        let k = 6;
        let ops: Vec<Mutation> = (0..k)
            .map(|i| Mutation::Insert(rec(1_000 + i, 150 + i * 1_111)))
            .collect();
        let report = owner.apply_batch(&mut st, ops).unwrap();
        assert!(st.audit());
        // Each of the k inserts dirties at most itself + 2 neighbors.
        assert!(report.signatures_recomputed <= 3 * k as usize, "{report:?}");
        // Probe the chain itself: count signatures that actually changed.
        let after = sig_bytes_by_key(&st);
        let before: std::collections::BTreeMap<_, _> = before.into_iter().collect();
        let changed = after
            .iter()
            .filter(|(tk, sig)| before.get(tk) != Some(sig))
            .count();
        assert_eq!(changed, report.signatures_recomputed);
        assert!(changed <= 3 * k as usize && changed < st.chain_len() / 2);
    }

    #[test]
    fn apply_batch_validates_before_mutating() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let before = sig_bytes_by_key(&st);
        // Second op is invalid: the whole batch must be rejected with no
        // partial application.
        let err = owner
            .apply_batch(
                &mut st,
                vec![
                    Mutation::Insert(rec(9, 5_000)),
                    Mutation::Delete {
                        key: 4_242,
                        replica: 0,
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, OwnerError::NoSuchRecord { key: 4_242, .. }));
        let err = owner
            .apply_batch(&mut st, vec![Mutation::Insert(rec(9, 2_000_000))])
            .unwrap_err();
        assert!(matches!(err, OwnerError::KeyOutOfDomain { key: 2_000_000 }));
        assert_eq!(
            sig_bytes_by_key(&st),
            before,
            "failed batch must be a no-op"
        );
        assert!(st.audit());
    }

    #[test]
    fn replay_batch_reconstructs_byte_identically() {
        let owner = test_owner();
        let signed = |t: Table| {
            owner
                .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
                .unwrap()
        };
        let mut owner_st = signed(figure1_table());
        let mut publisher_st = signed(figure1_table());
        let report = owner
            .apply_batch(
                &mut owner_st,
                vec![
                    Mutation::Insert(rec(9, 5_000)),
                    Mutation::Delete {
                        key: 3_500,
                        replica: 0,
                    },
                ],
            )
            .unwrap();
        publisher_st
            .replay_batch(&report.ops, &report.resigned)
            .unwrap();
        assert!(publisher_st.audit());
        assert_eq!(sig_bytes_by_key(&owner_st), sig_bytes_by_key(&publisher_st));
    }

    #[test]
    fn replay_batch_rejects_forgeries() {
        let owner = test_owner();
        let signed = |t: Table| {
            owner
                .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
                .unwrap()
        };
        let mut owner_st = signed(figure1_table());
        let report = owner
            .apply_batch(&mut owner_st, vec![Mutation::Insert(rec(9, 5_000))])
            .unwrap();

        // A tampered signature byte is rejected.
        let mut forged = report.resigned.clone();
        let mut bytes = forged[1].1.to_bytes();
        bytes[0] ^= 0x01;
        forged[1].1 = Signature::from_bytes(&bytes);
        let err = signed(figure1_table())
            .replay_batch(&report.ops, &forged)
            .unwrap_err();
        assert!(matches!(err, OwnerError::ResignatureInvalid { .. }));

        // A wrong position set is rejected.
        let err = signed(figure1_table())
            .replay_batch(&report.ops, &report.resigned[..1])
            .unwrap_err();
        assert!(matches!(err, OwnerError::ResignSetMismatch { .. }));

        // A swapped record (honest sigs, different data) is rejected.
        let err = signed(figure1_table())
            .replay_batch(&[Mutation::Insert(rec(9, 5_001))], &report.resigned)
            .unwrap_err();
        assert!(matches!(
            err,
            OwnerError::ResignatureInvalid { .. } | OwnerError::ResignSetMismatch { .. }
        ));

        // A non-canonical key-changing update is rejected at replay.
        let err = signed(figure1_table())
            .replay_batch(
                &[Mutation::Update {
                    key: 3_500,
                    replica: 0,
                    record: rec(2, 4_000),
                }],
                &report.resigned,
            )
            .unwrap_err();
        assert!(matches!(err, OwnerError::UpdateChangesKey { .. }));
    }
}
