//! Owner-side costs: signing throughput vs table size, parallel speedup,
//! and per-scheme dissemination sizes.
//!
//! The paper's Section 6.3 frames owner costs as "analogous to creating
//! B+-trees on those attributes"; this harness quantifies them for this
//! implementation: signature-chain construction is embarrassingly parallel
//! per record (scoped-thread fan-out in `Owner::sign_table`), and the shipped
//! material is one signature per record (+2 delimiters).

use adp_bench::{bench_owner_small, f2, TablePrinter, WorkloadSpec};
use adp_core::prelude::*;
use std::time::Instant;

fn main() {
    println!("\n=== Owner-side signing costs (512-bit keys, B = 2) ===\n");
    let owner = bench_owner_small();
    let t = TablePrinter::new(&[
        "rows",
        "sign time s",
        "rows/s",
        "hash ops/row",
        "shipped KiB",
    ]);
    for n in [1_000usize, 5_000, 20_000] {
        let (table, domain) = WorkloadSpec::new(n).build();
        adp_crypto::reset_hash_ops();
        let start = Instant::now();
        let st = owner
            .sign_table(table, domain, SchemeConfig::default())
            .unwrap();
        let elapsed = start.elapsed();
        let ops = adp_crypto::hash_ops();
        t.row(&[
            &n.to_string(),
            &format!("{:.2}", elapsed.as_secs_f64()),
            &format!("{:.0}", n as f64 / elapsed.as_secs_f64()),
            &format!("{:.0}", ops as f64 / (n + 2) as f64),
            &format!("{}", st.dissemination_size() / 1024),
        ]);
    }

    // Update-locality recap at the largest size (the Section 6.3 point):
    let (table, domain) = WorkloadSpec::new(20_000).build();
    let mut st = owner
        .sign_table(table, domain, SchemeConfig::default())
        .unwrap();
    let key = {
        let row = st.table().row(10_000);
        row.record.key(st.table().schema())
    };
    let start = Instant::now();
    let report = owner
        .update_record(
            &mut st,
            key,
            0,
            adp_relation::Record::new(vec![
                adp_relation::Value::Int(key),
                adp_relation::Value::Int(-1),
                adp_relation::Value::Bytes(vec![0u8; 64]),
            ]),
        )
        .unwrap();
    let upd = start.elapsed();
    println!(
        "\nsingle update in the 20k-row table: {} signatures, {} index leaves, {} ms\n\
         (constant-cost updates regardless of n — the contrast with MHT\n\
         root-path schemes is measured in sec63_updates)",
        report.signatures_recomputed,
        report.index_leaves_touched,
        f2(upd.as_secs_f64() * 1e3)
    );
}
