//! Robustness of the frame layer under adversarial bytes, mirroring
//! `adp-core/tests/wire_robustness.rs` one level up the stack: a live
//! server fed truncated headers, bad magic/version bytes, oversized
//! length prefixes, and random mutations must never panic, must answer
//! protocol violations with an `Error` frame where a reply is possible,
//! and must keep serving well-formed clients afterwards.

use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use adp_server::protocol::{decode_frame, encode_frame, read_frame, ErrorCode, Frame, ProtoError};
use adp_server::{RemoteClient, Server, ServerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::OnceLock;

fn handle() -> &'static adp_server::ServerHandle {
    static SRV: OnceLock<adp_server::ServerHandle> = OnceLock::new();
    SRV.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xF4A3);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("v", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("robust", schema);
        for i in 0..10i64 {
            t.insert(Record::new(vec![
                Value::Int(i * 10 + 5),
                Value::from(format!("r{i}")),
            ]))
            .unwrap();
        }
        let st = owner
            .sign_table(t, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let mut server = Server::new(ServerConfig::default());
        server.add_table(0, st);
        server.serve("127.0.0.1:0").unwrap()
    })
}

/// Writes raw bytes to a fresh connection and returns the server's single
/// reply frame (if any). The write half is shut down so a declared frame
/// length larger than what was sent hits EOF on the server immediately
/// instead of stalling both sides until the frame timeout.
fn send_raw(bytes: &[u8]) -> Result<Frame, ProtoError> {
    let mut stream = TcpStream::connect(handle().addr()).unwrap();
    // Best-effort writes: the server may legitimately have replied and
    // closed already (a reset then fails write/shutdown, which is fine —
    // the reply, if any, is still readable below).
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    read_frame(&mut stream)
}

/// The server must still answer a well-formed client.
fn assert_still_serving() {
    let mut client = RemoteClient::connect(handle().addr()).unwrap();
    client.ping().expect("server must survive malformed input");
}

#[test]
fn garbage_bytes_get_an_error_frame_and_service_survives() {
    match send_raw(b"GARBAGE!").unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert_still_serving();
}

#[test]
fn truncated_header_closes_cleanly() {
    // Fewer bytes than a header, then EOF: no reply is possible, the
    // server just drops the connection without panicking.
    let mut stream = TcpStream::connect(handle().addr()).unwrap();
    stream.write_all(&[0xAD, 0x50, 0x01]).unwrap();
    drop(stream);
    assert_still_serving();
}

#[test]
fn bad_version_byte_rejected() {
    let mut bytes = encode_frame(&Frame::Ping);
    bytes[2] = 0x7F;
    match send_raw(&bytes).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert_still_serving();
}

#[test]
fn oversized_length_prefix_rejected_without_allocation() {
    let mut bytes = encode_frame(&Frame::Ping);
    bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    match send_raw(&bytes).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("exceeds cap"), "{message}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert_still_serving();
}

#[test]
fn unknown_frame_type_rejected() {
    let mut bytes = encode_frame(&Frame::Ping);
    bytes[3] = 0xEE;
    match send_raw(&bytes).unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert_still_serving();
}

#[test]
fn wrong_direction_frame_rejected() {
    // A client sending a server-to-client frame is out of protocol.
    let bytes = encode_frame(&Frame::StatsResponse(Default::default()));
    match send_raw(&bytes).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("direction"), "{message}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert_still_serving();
}

fn sample_request_bytes() -> Vec<u8> {
    encode_frame(&Frame::QueryRequest {
        table_id: 0,
        query: SelectQuery::range(KeyRange::closed(10, 60)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutating any byte of a valid request must never panic the decoder:
    /// the outcome is a frame (possibly still valid) or an error.
    #[test]
    fn decode_never_panics_on_mutation(pos in 0usize..4096, byte: u8) {
        let mut bytes = sample_request_bytes();
        let idx = pos % bytes.len();
        bytes[idx] = byte;
        let _ = decode_frame(&bytes);
    }

    /// Truncations must never panic either.
    #[test]
    fn decode_never_panics_on_truncation(cut in 0usize..4096) {
        let bytes = sample_request_bytes();
        let cut = cut % (bytes.len() + 1);
        let _ = decode_frame(&bytes[..cut]);
    }

    /// A live server fed a mutated request must reply with *some* frame
    /// (a response to a still-valid request, or an error) or close — and
    /// must keep serving afterwards.
    #[test]
    fn server_survives_mutated_requests(pos in 0usize..4096, byte: u8) {
        let mut bytes = sample_request_bytes();
        let idx = pos % bytes.len();
        bytes[idx] = byte;
        let _ = send_raw(&bytes); // reply content is free; no hang, no panic
        assert_still_serving();
    }
}
