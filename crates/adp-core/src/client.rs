//! A user-side convenience layer: issue queries, verify the answers, and
//! account for the authentication costs — the role marked "user" in
//! Figure 3, packaged.
//!
//! Beyond plumbing, this module implements two pieces of the paper that
//! live naturally on the client:
//!
//! * **`K ≠ α` selections** (Section 4.1): "`K ≠ α` can be mapped to
//!   `(L < K < α) ∪ (α < K < U)`" — [`Client::select_ne`] runs both halves
//!   as independently verified range queries and concatenates them.
//! * **Verified aggregates** (Section 4.2 motivates retaining duplicates
//!   "e.g. for the computation of SUM and AVG"): [`Client::aggregate`]
//!   computes COUNT/SUM/MIN/MAX/AVG *locally over a verified result*, so
//!   the aggregate inherits the completeness guarantee — an untrusted
//!   publisher cannot bias a verified SUM by omitting rows.

use crate::errors::VerifyError;
use crate::owner::Certificate;
use crate::publisher::{PublishError, Publisher};
use crate::verifier::{verify_select_wire, VerifyReport};
use crate::wire;
use adp_relation::{KeyRange, Record, SelectQuery, Value};
use std::ops::Bound;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    Publish(PublishError),
    Verify(VerifyError),
    /// The aggregate referenced a column absent from the result.
    BadAggregateColumn {
        column: String,
    },
    /// The aggregate requires numeric values.
    NonNumericColumn {
        column: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Publish(e) => write!(f, "publisher error: {e}"),
            ClientError::Verify(e) => write!(f, "verification failed: {e}"),
            ClientError::BadAggregateColumn { column } => {
                write!(f, "aggregate column '{column}' not in the result")
            }
            ClientError::NonNumericColumn { column } => {
                write!(f, "aggregate column '{column}' is not numeric")
            }
        }
    }
}
impl std::error::Error for ClientError {}

impl From<PublishError> for ClientError {
    fn from(e: PublishError) -> Self {
        ClientError::Publish(e)
    }
}
impl From<VerifyError> for ClientError {
    fn from(e: VerifyError) -> Self {
        ClientError::Verify(e)
    }
}

/// Cumulative session statistics (the quantities of Section 6.1/6.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    pub queries: usize,
    pub rows_verified: usize,
    pub result_bytes: usize,
    pub vo_bytes: usize,
    pub signatures_verified: usize,
    pub hash_ops: u64,
    pub verify_time: Duration,
}

impl SessionStats {
    /// The paper's Figure 9 metric for the session so far: authentication
    /// bytes per result byte, in percent.
    pub fn traffic_overhead_pct(&self) -> f64 {
        if self.result_bytes == 0 {
            0.0
        } else {
            100.0 * self.vo_bytes as f64 / self.result_bytes as f64
        }
    }
}

/// One verified answer.
#[derive(Clone, Debug)]
pub struct VerifiedResult {
    pub rows: Vec<Record>,
    pub report: VerifyReport,
    pub result_bytes: usize,
    pub vo_bytes: usize,
}

/// A verifying client bound to one table certificate.
pub struct Client {
    cert: Certificate,
    stats: SessionStats,
}

impl Client {
    /// Creates a client trusting `cert` (obtained from the owner over an
    /// authenticated channel).
    pub fn new(cert: Certificate) -> Self {
        Client {
            cert,
            stats: SessionStats::default(),
        }
    }

    /// The certificate in use.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Session statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Issues `query` to `publisher`, transports result + VO through the
    /// wire codec (as a real deployment would), verifies, and accounts.
    pub fn select(
        &mut self,
        publisher: &Publisher<'_>,
        query: &SelectQuery,
    ) -> Result<VerifiedResult, ClientError> {
        let (rows, vo) = publisher.answer_select(query)?;
        let result_bytes = wire::encode_records(&rows);
        let vo_bytes = wire::encode_vo(&vo);
        let ops_before = adp_crypto::hash_ops();
        let start = Instant::now();
        let (rows, report) = verify_select_wire(&self.cert, query, &result_bytes, &vo_bytes)?;
        let elapsed = start.elapsed();
        self.stats.queries += 1;
        self.stats.rows_verified += report.matched;
        self.stats.result_bytes += result_bytes.len();
        self.stats.vo_bytes += vo_bytes.len();
        self.stats.signatures_verified += report.signatures_verified;
        self.stats.hash_ops += adp_crypto::hash_ops().saturating_sub(ops_before);
        self.stats.verify_time += elapsed;
        Ok(VerifiedResult {
            rows,
            report,
            result_bytes: result_bytes.len(),
            vo_bytes: vo_bytes.len(),
        })
    }

    /// Section 4.1: `K ≠ α` as `(L < K < α) ∪ (α < K < U)` — two verified
    /// range queries, independently proven complete, concatenated in key
    /// order.
    pub fn select_ne(
        &mut self,
        publisher: &Publisher<'_>,
        alpha: i64,
        template: &SelectQuery,
    ) -> Result<VerifiedResult, ClientError> {
        let mut below = template.clone();
        below.range = template.range.intersect(&KeyRange {
            lo: Bound::Unbounded,
            hi: Bound::Excluded(alpha),
        });
        let mut above = template.clone();
        above.range = template.range.intersect(&KeyRange {
            lo: Bound::Excluded(alpha),
            hi: Bound::Unbounded,
        });
        let lo = self.select(publisher, &below)?;
        let hi = self.select(publisher, &above)?;
        let mut rows = lo.rows;
        rows.extend(hi.rows);
        let report = VerifyReport {
            matched: lo.report.matched + hi.report.matched,
            filtered: lo.report.filtered + hi.report.filtered,
            duplicates: lo.report.duplicates + hi.report.duplicates,
            signatures_verified: lo.report.signatures_verified + hi.report.signatures_verified,
            empty: lo.report.empty && hi.report.empty,
        };
        Ok(VerifiedResult {
            rows,
            report,
            result_bytes: lo.result_bytes + hi.result_bytes,
            vo_bytes: lo.vo_bytes + hi.vo_bytes,
        })
    }

    /// A verified aggregate over `column` for the rows matching `query`.
    /// The aggregate is computed client-side from the verified result, so
    /// completeness transfers: no qualifying row can be missing from the
    /// sum. Duplicates are retained as the paper prescribes for SUM/AVG.
    pub fn aggregate(
        &mut self,
        publisher: &Publisher<'_>,
        query: &SelectQuery,
        column: &str,
        kind: AggregateKind,
    ) -> Result<AggregateValue, ClientError> {
        // Ensure the aggregated column is in the projection.
        let mut q = query.clone();
        if let adp_relation::Projection::Columns(cols) = &mut q.projection {
            if !cols.iter().any(|c| c == column) {
                cols.push(column.to_string());
            }
        }
        let verified = self.select(publisher, &q)?;
        if kind == AggregateKind::Count {
            return Ok(AggregateValue::Count(verified.rows.len() as u64));
        }
        // Locate the column in the effective projection.
        let proj =
            crate::publisher::effective_projection(&self.cert.schema, &q.projection, &q.filters)
                .ok_or_else(|| ClientError::BadAggregateColumn {
                    column: column.to_string(),
                })?;
        let col_idx = self.cert.schema.column_index(column).ok_or_else(|| {
            ClientError::BadAggregateColumn {
                column: column.to_string(),
            }
        })?;
        let slot = proj.iter().position(|&c| c == col_idx).ok_or_else(|| {
            ClientError::BadAggregateColumn {
                column: column.to_string(),
            }
        })?;
        let mut values = Vec::with_capacity(verified.rows.len());
        for r in &verified.rows {
            match r.get(slot) {
                Value::Int(v) => values.push(*v),
                _ => {
                    return Err(ClientError::NonNumericColumn {
                        column: column.to_string(),
                    })
                }
            }
        }
        Ok(match kind {
            AggregateKind::Count => unreachable!("handled above"),
            AggregateKind::Sum => AggregateValue::Sum(values.iter().sum()),
            AggregateKind::Min => AggregateValue::Min(values.iter().min().copied()),
            AggregateKind::Max => AggregateValue::Max(values.iter().max().copied()),
            AggregateKind::Avg => AggregateValue::Avg(if values.is_empty() {
                None
            } else {
                Some(values.iter().sum::<i64>() as f64 / values.len() as f64)
            }),
        })
    }
}

/// Supported verified aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateKind {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// Aggregate results (Min/Max/Avg are `None` over empty inputs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggregateValue {
    Count(u64),
    Sum(i64),
    Min(Option<i64>),
    Max(Option<i64>),
    Avg(Option<f64>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::Owner;
    use crate::scheme::SchemeConfig;
    use adp_relation::{Column, CompareOp, Predicate, Schema, Table, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn owner() -> &'static Owner {
        static OWNER: OnceLock<Owner> = OnceLock::new();
        OWNER.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0xC11E);
            Owner::new(512, &mut rng)
        })
    }

    fn setup() -> (crate::owner::SignedTable, Certificate) {
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("amount", ValueType::Int),
                Column::new("tag", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("ledger", schema);
        for i in 0..20i64 {
            t.insert(adp_relation::Record::new(vec![
                Value::Int(i * 10 + 5),
                Value::Int(i * 100),
                Value::from(if i % 2 == 0 { "even" } else { "odd" }),
            ]))
            .unwrap();
        }
        let st = owner()
            .sign_table(
                t,
                crate::domain::Domain::new(0, 1_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let cert = owner().certificate(&st);
        (st, cert)
    }

    #[test]
    fn select_accumulates_stats() {
        let (st, cert) = setup();
        let mut client = Client::new(cert);
        let publisher = Publisher::new(&st);
        let q = SelectQuery::range(KeyRange::closed(0, 100));
        let r1 = client.select(&publisher, &q).unwrap();
        assert_eq!(r1.rows.len(), 10);
        let _ = client.select(&publisher, &q).unwrap();
        let stats = client.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rows_verified, 20);
        assert!(stats.vo_bytes > 0 && stats.result_bytes > 0);
        assert!(stats.hash_ops > 0);
        assert!(stats.traffic_overhead_pct() > 0.0);
    }

    #[test]
    fn select_ne_partitions_the_domain() {
        let (st, cert) = setup();
        let mut client = Client::new(cert);
        let publisher = Publisher::new(&st);
        // K != 105 over the full table: every row except k = 105.
        let template = SelectQuery::range(KeyRange::all());
        let r = client.select_ne(&publisher, 105, &template).unwrap();
        assert_eq!(r.rows.len(), 19);
        assert!(r.rows.iter().all(|row| row.get(0).as_int() != Some(105)));
        // Both halves were separately proven complete.
        assert_eq!(client.stats().queries, 2);
    }

    #[test]
    fn select_ne_on_missing_value_returns_all() {
        let (st, cert) = setup();
        let mut client = Client::new(cert);
        let publisher = Publisher::new(&st);
        let template = SelectQuery::range(KeyRange::all());
        let r = client.select_ne(&publisher, 107, &template).unwrap();
        assert_eq!(r.rows.len(), 20);
    }

    #[test]
    fn verified_aggregates() {
        let (st, cert) = setup();
        let mut client = Client::new(cert);
        let publisher = Publisher::new(&st);
        let q = SelectQuery::range(KeyRange::closed(0, 100));
        // Rows k=5..95: amounts 0,100,…,900.
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Count)
                .unwrap(),
            AggregateValue::Count(10)
        );
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Sum)
                .unwrap(),
            AggregateValue::Sum(4_500)
        );
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Min)
                .unwrap(),
            AggregateValue::Min(Some(0))
        );
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Max)
                .unwrap(),
            AggregateValue::Max(Some(900))
        );
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Avg)
                .unwrap(),
            AggregateValue::Avg(Some(450.0))
        );
    }

    #[test]
    fn aggregate_over_empty_range() {
        let (st, cert) = setup();
        let mut client = Client::new(cert);
        let publisher = Publisher::new(&st);
        let q = SelectQuery::range(KeyRange::closed(996, 998));
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Sum)
                .unwrap(),
            AggregateValue::Sum(0)
        );
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Avg)
                .unwrap(),
            AggregateValue::Avg(None)
        );
    }

    #[test]
    fn aggregate_with_filters_and_projection() {
        let (st, cert) = setup();
        let mut client = Client::new(cert);
        let publisher = Publisher::new(&st);
        let q = SelectQuery::range(KeyRange::all())
            .filter(Predicate::new("tag", CompareOp::Eq, "even"))
            .project(&["k"]);
        // Even rows: amounts 0,200,…,1800 → sum 9000.
        assert_eq!(
            client
                .aggregate(&publisher, &q, "amount", AggregateKind::Sum)
                .unwrap(),
            AggregateValue::Sum(9_000)
        );
    }

    #[test]
    fn aggregate_rejects_non_numeric() {
        let (st, cert) = setup();
        let mut client = Client::new(cert);
        let publisher = Publisher::new(&st);
        let q = SelectQuery::range(KeyRange::all());
        assert!(matches!(
            client.aggregate(&publisher, &q, "tag", AggregateKind::Sum),
            Err(ClientError::NonNumericColumn { .. })
        ));
        assert!(matches!(
            client.aggregate(&publisher, &q, "nope", AggregateKind::Sum),
            Err(ClientError::BadAggregateColumn { .. })
        ));
    }

    #[test]
    fn tampered_answer_surfaces_as_client_error() {
        // A Client over a mismatched certificate refuses results.
        let (st, _) = setup();
        let mut rng = StdRng::seed_from_u64(0xBAD);
        let other = Owner::new(512, &mut rng);
        let other_st = {
            let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
            let t = Table::new("ledger", schema);
            other
                .sign_table(
                    t,
                    crate::domain::Domain::new(0, 1_000),
                    SchemeConfig::default(),
                )
                .unwrap()
        };
        let mut client = Client::new(other.certificate(&other_st));
        let publisher = Publisher::new(&st);
        let q = SelectQuery::range(KeyRange::closed(0, 100));
        assert!(matches!(
            client.select(&publisher, &q),
            Err(ClientError::Verify(_))
        ));
    }
}
