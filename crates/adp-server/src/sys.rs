//! Thin `std`-only bindings to the few Linux syscalls the readiness loop
//! needs: `epoll_create1` / `epoll_ctl` / `epoll_pwait`, plus `prlimit64`
//! so the load harness can raise the open-file limit before holding tens
//! of thousands of sockets.
//!
//! This build environment has no `libc` crate (offline, shims only), so
//! the syscalls are issued directly with inline assembly. Only Linux on
//! x86_64 and aarch64 is supported — the reactor is epoll-shaped through
//! and through, and a poll/kqueue port would be a separate backend, not a
//! cfg twiddle.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

#[cfg(not(target_os = "linux"))]
compile_error!(
    "adp-server's readiness loop requires Linux epoll; \
     no other backend is implemented"
);

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const RT_SIGPROCMASK: u64 = 14;
    pub const EPOLL_CTL: u64 = 233;
    pub const EPOLL_PWAIT: u64 = 281;
    pub const SIGNALFD4: u64 = 289;
    pub const EPOLL_CREATE1: u64 = 291;
    pub const PRLIMIT64: u64 = 302;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CTL: u64 = 21;
    pub const EPOLL_PWAIT: u64 = 22;
    pub const EPOLL_CREATE1: u64 = 20;
    pub const SIGNALFD4: u64 = 74;
    pub const RT_SIGPROCMASK: u64 = 135;
    pub const PRLIMIT64: u64 = 261;
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("no syscall numbers wired up for this architecture");

/// Issues a raw syscall with up to six arguments, returning the kernel's
/// raw result (negative errno on failure).
///
/// # Safety
/// The caller must uphold the specific syscall's contract: every pointer
/// argument must be valid for the access the kernel performs.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64, a6: u64) -> i64 {
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as i64 => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// See the x86_64 variant; aarch64 passes the number in `x8`.
///
/// # Safety
/// Same contract as the x86_64 variant.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64, a6: u64) -> i64 {
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 as i64 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
    }
    ret
}

fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

/// Readiness: data to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the socket's send buffer has room.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: u64 = 1;
const EPOLL_CTL_DEL: u64 = 2;
const EPOLL_CTL_MOD: u64 = 3;
const EPOLL_CLOEXEC: u64 = 0x80000;

/// One readiness report. The kernel's layout: on x86_64 the struct is
/// packed (no padding between the `u32` mask and the `u64` data), on
/// other architectures it is naturally aligned.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An empty slot for the wait buffer.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness mask (copied out by value — the struct may be packed).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The token registered with [`Epoll::add`].
    pub fn token(&self) -> u64 {
        self.data
    }
}

/// An epoll instance (RAII over the epoll fd).
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: u64, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as u64,
                op,
                fd as u64,
                ptr as u64,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` (level-triggered) with the given interest mask and
    /// token; the token comes back verbatim in [`EpollEvent::token`].
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Unregisters a fd. (Closing the fd also unregisters it; this exists
    /// for the rare case where the fd must outlive its registration.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events` and returning how many slots
    /// were written. `timeout_ms` < 0 blocks indefinitely; 0 polls.
    /// Interrupted waits (`EINTR`) are retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // epoll_pwait with a null sigmask == epoll_wait; aarch64 has
            // no plain epoll_wait syscall, so use pwait on both arches.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd.as_raw_fd() as u64,
                    events.as_mut_ptr() as u64,
                    events.len() as u64,
                    timeout_ms as u64,
                    0, // sigmask: NULL
                    8, // sigsetsize
                )
            };
            match check(ret) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

const RLIMIT_NOFILE: u64 = 7;

#[repr(C)]
struct RLimit64 {
    cur: u64,
    max: u64,
}

/// Returns the current `(soft, hard)` open-file limit.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = RLimit64 { cur: 0, max: 0 };
    check(unsafe {
        syscall6(
            nr::PRLIMIT64,
            0, // pid 0: this process
            RLIMIT_NOFILE,
            0, // new_limit: NULL
            &mut lim as *mut RLimit64 as u64,
            0,
            0,
        )
    })?;
    Ok((lim.cur, lim.max))
}

/// Raises the open-file soft limit to at least `want` fds (raising the
/// hard limit too when the process is privileged enough), returning the
/// soft limit actually in effect. Never lowers anything.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= want {
        return Ok(soft);
    }
    let set = |cur: u64, max: u64| -> io::Result<()> {
        let new = RLimit64 { cur, max };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &new as *const RLimit64 as u64,
                0, // old_limit: NULL
                0,
                0,
            )
        })
        .map(|_| ())
    };
    if want > hard {
        // Needs privilege; fall back to the hard limit if refused.
        if set(want, want).is_ok() {
            return Ok(want);
        }
        set(hard, hard)?;
        return Ok(hard);
    }
    set(want, hard)?;
    Ok(want)
}

/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill).
pub const SIGTERM: i32 = 15;

const SIG_BLOCK: u64 = 0;
const SFD_CLOEXEC: u64 = 0o2000000;

/// A signalfd: the listed signals, blocked for normal delivery, arrive as
/// reads on this fd instead — which is how `adp serve` turns `SIGTERM` /
/// Ctrl-C into a graceful drain without an async-signal-safe handler (no
/// `libc`, no `signal(2)`; the whole mechanism is two syscalls).
///
/// Create it on the main thread **before** spawning any other thread:
/// `rt_sigprocmask` masks only the calling thread, and threads inherit
/// the mask at spawn — signals must be masked everywhere, or the kernel
/// may deliver them to an unmasked thread (killing the process) instead
/// of queueing them on the fd.
pub struct SignalFd {
    fd: OwnedFd,
}

impl SignalFd {
    /// Blocks `signals` for this thread (future threads inherit the mask)
    /// and returns a blocking fd that reads them instead.
    pub fn new(signals: &[i32]) -> io::Result<SignalFd> {
        let mut mask: u64 = 0;
        for &sig in signals {
            assert!((1..=64).contains(&sig), "bad signal number {sig}");
            mask |= 1u64 << (sig - 1);
        }
        check(unsafe {
            syscall6(
                nr::RT_SIGPROCMASK,
                SIG_BLOCK,
                &mask as *const u64 as u64,
                0, // oldset: NULL
                8, // sigsetsize
                0,
                0,
            )
        })?;
        let fd = check(unsafe {
            syscall6(
                nr::SIGNALFD4,
                u64::MAX, // -1: new fd
                &mask as *const u64 as u64,
                8, // sigsetsize
                SFD_CLOEXEC,
                0,
                0,
            )
        })?;
        Ok(SignalFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// Blocks until one of the masked signals arrives; returns its number.
    /// (`read(2)` on a signalfd writes a 128-byte `signalfd_siginfo`
    /// whose leading `u32` is the signal number — `std`'s `File` read is
    /// exactly that syscall, no extra binding needed.)
    pub fn wait(&self) -> io::Result<i32> {
        use std::io::Read;
        let mut info = [0u8; 128];
        let mut f = std::fs::File::from(self.fd.try_clone()?);
        f.read_exact(&mut info)?;
        let signo = u32::from_ne_bytes(info[0..4].try_into().expect("4 bytes"));
        Ok(signo as i32)
    }

    /// The raw fd (e.g. to register with an [`Epoll`]).
    pub fn as_raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readable_socket() {
        let epoll = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        epoll.add(b.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing written yet: a zero-timeout wait reports nothing.
        let mut events = [EpollEvent::zeroed(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        // Level-triggered: still readable until drained.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);

        epoll.delete(b.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn modify_switches_interest() {
        let epoll = Epoll::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        // A fresh socket pair is writable immediately but not readable.
        epoll.add(b.as_raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        epoll.modify(b.as_raw_fd(), EPOLLIN | EPOLLOUT, 7).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events() & EPOLLOUT, 0);
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0);
        assert!(hard >= soft);
    }
}
