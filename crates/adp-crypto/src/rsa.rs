//! RSA signatures over message digests (the paper's `s(.)` / `s^{-1}(.)`).
//!
//! Full-domain-hash (FDH) RSA: the digest to be signed is expanded to the
//! modulus size with a counter-mode hash (see [`crate::Hasher::expand`]) and
//! exponentiated with the private key. Verification recomputes the expansion
//! and checks `sig^e mod n`. FDH-RSA is the classic provably-secure RSA
//! signature in the random-oracle model, and — crucially for Section 5.2 of
//! the paper — it is *compatible with condensed aggregation*: signatures by
//! the same signer can be multiplied modulo `n` and verified in a single
//! exponentiation (Mykletun et al., "Signature Bouquets").
//!
//! Signing uses the standard CRT speed-up (~4x). Key generation is
//! deterministic given a seeded RNG so tests and benches are reproducible.

use crate::bigint::{gen_prime, BigUint};
use crate::digest::Digest;
use crate::hasher::Hasher;
use crate::montgomery::MontgomeryCtx;
use rand::RngCore;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Public verification key `(n, e)`.
///
/// Carries a lazily built, shared [`MontgomeryCtx`] for `n`: every
/// `verify` (and every condensed-aggregate verification) runs on the same
/// precomputed `R² mod n` instead of re-deriving it per call. Clones share
/// the cache, so a key threaded through certificates, verifiers, and
/// servers warms it exactly once per process.
#[derive(Clone)]
pub struct PublicKey {
    n: BigUint,
    e: BigUint,
    bits: usize,
    mont: Arc<OnceLock<Option<MontgomeryCtx>>>,
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e && self.bits == other.bits
    }
}

impl Eq for PublicKey {}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({} bits)", self.bits)
    }
}

impl PublicKey {
    /// Reassembles a public key from its components (e.g. decoded from a
    /// certificate file). The modulus size is derived from `n`.
    pub fn from_parts(n: BigUint, e: BigUint) -> Self {
        let bits = n.bit_len();
        PublicKey {
            n,
            e,
            bits,
            mont: Arc::new(OnceLock::new()),
        }
    }

    /// The cached Montgomery context for `n` (built on first use; `None`
    /// only for degenerate even moduli, which real keys never have).
    pub(crate) fn mont_ctx(&self) -> Option<&MontgomeryCtx> {
        self.mont
            .get_or_init(|| MontgomeryCtx::new(&self.n))
            .as_ref()
    }

    /// Eagerly builds the Montgomery context so the first verification on a
    /// latency-sensitive path (e.g. a server answering its first query)
    /// doesn't pay the one-time `R² mod n` setup.
    pub fn precompute(&self) {
        let _ = self.mont_ctx();
    }

    /// `base^exp mod n` through the cached Montgomery context.
    pub fn pow_mod_n(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        match self.mont_ctx() {
            Some(ctx) => ctx.mod_pow(base, exp),
            None => base.mod_pow(exp, &self.n),
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in bits (the paper's `M_sign`).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Signature size in bytes.
    pub fn signature_len(&self) -> usize {
        self.bits.div_ceil(8)
    }

    /// Expands a digest to the full-domain representative in `[0, n)`.
    pub(crate) fn fdh(&self, hasher: &Hasher, digest: &Digest) -> BigUint {
        let len = self.signature_len();
        let mut bytes = hasher.expand(digest.as_bytes(), len);
        // Clear the top byte so the representative is < n (n's top bit is
        // set for keys produced by `Keypair::generate`).
        bytes[0] = 0;
        BigUint::from_bytes_be(&bytes)
    }

    /// Verifies `sig` over `digest`. Returns true iff valid.
    pub fn verify(&self, hasher: &Hasher, digest: &Digest, sig: &Signature) -> bool {
        if sig.value.cmp(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        let expected = self.fdh(hasher, digest);
        self.pow_mod_n(&sig.value, &self.e) == expected
    }
}

/// Private signing key (CRT form), with cached per-prime Montgomery
/// contexts so each CRT half-exponentiation skips the `R² mod p` setup.
#[derive(Clone)]
pub struct PrivateKey {
    public: PublicKey,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    q_inv: BigUint,
    mont_p: OnceLock<Option<MontgomeryCtx>>,
    mont_q: OnceLock<Option<MontgomeryCtx>>,
}

impl PrivateKey {
    fn mont_p(&self) -> Option<&MontgomeryCtx> {
        self.mont_p
            .get_or_init(|| MontgomeryCtx::new(&self.p))
            .as_ref()
    }

    fn mont_q(&self) -> Option<&MontgomeryCtx> {
        self.mont_q
            .get_or_init(|| MontgomeryCtx::new(&self.q))
            .as_ref()
    }
}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrivateKey({} bits)", self.public.bits)
    }
}

/// An RSA signature (one modulus-sized value).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    pub(crate) value: BigUint,
    pub(crate) len: usize,
}

impl Signature {
    /// Serialized length in bytes (the paper's `M_sign / 8`).
    pub fn byte_len(&self) -> usize {
        self.len
    }

    /// Fixed-width big-endian encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.value.to_bytes_be_padded(self.len)
    }

    /// Decodes a fixed-width big-endian signature.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Signature {
            value: BigUint::from_bytes_be(bytes),
            len: bytes.len(),
        }
    }

    /// Raw integer value (used by aggregation).
    pub fn value(&self) -> &BigUint {
        &self.value
    }
}

/// An RSA keypair. Cheap to clone (`Arc` inside).
#[derive(Clone, Debug)]
pub struct Keypair {
    inner: Arc<PrivateKey>,
}

impl Keypair {
    /// Generates a fresh keypair with a modulus of `bits` bits
    /// (e.g. 1024 to match the paper's `M_sign`, 512 for fast tests).
    ///
    /// Deterministic for a given RNG state.
    pub fn generate(bits: usize, rng: &mut dyn RngCore) -> Self {
        assert!(bits >= 128, "modulus too small ({bits} bits)");
        assert!(bits.is_multiple_of(2), "modulus bits must be even");
        let e = BigUint::from_u64(65537);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            let dp = d.rem(&p.sub(&one));
            let dq = d.rem(&q.sub(&one));
            let Some(q_inv) = q.mod_inverse(&p) else {
                continue;
            };
            let public = PublicKey::from_parts(n, e);
            return Keypair {
                inner: Arc::new(PrivateKey {
                    public,
                    p,
                    q,
                    dp,
                    dq,
                    q_inv,
                    mont_p: OnceLock::new(),
                    mont_q: OnceLock::new(),
                }),
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.inner.public
    }

    /// Signs a digest (FDH + CRT exponentiation).
    pub fn sign(&self, hasher: &Hasher, digest: &Digest) -> Signature {
        let k = &self.inner;
        let m = k.public.fdh(hasher, digest);
        // CRT: s_p = m^dp mod p, s_q = m^dq mod q,
        //      s  = s_q + q * ((s_p - s_q) * q_inv mod p)
        let sp = match k.mont_p() {
            Some(ctx) => ctx.mod_pow(&m, &k.dp),
            None => m.mod_pow(&k.dp, &k.p),
        };
        let sq = match k.mont_q() {
            Some(ctx) => ctx.mod_pow(&m, &k.dq),
            None => m.mod_pow(&k.dq, &k.q),
        };
        let sq_mod_p = sq.rem(&k.p);
        let diff = if sp.cmp(&sq_mod_p) != std::cmp::Ordering::Less {
            sp.sub(&sq_mod_p)
        } else {
            sp.add(&k.p).sub(&sq_mod_p)
        };
        let h = match k.mont_p() {
            Some(ctx) => ctx.mul_mod(&diff, &k.q_inv),
            None => diff.mul_mod(&k.q_inv, &k.p),
        };
        let s = sq.add(&k.q.mul(&h));
        debug_assert_eq!(
            s.mod_pow(&k.public.e, &k.public.n),
            m,
            "CRT signature self-check"
        );
        Signature {
            value: s,
            len: k.public.signature_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::HashDomain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// Shared small test key so the (slow in debug builds) keygen runs once.
    pub(crate) fn test_keypair() -> &'static Keypair {
        static KEY: OnceLock<Keypair> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x0ADB_5EED);
            Keypair::generate(512, &mut rng)
        })
    }

    #[test]
    fn sign_verify_roundtrip() {
        let h = Hasher::default();
        let kp = test_keypair();
        let d = h.hash(HashDomain::Data, b"message");
        let sig = kp.sign(&h, &d);
        assert!(kp.public().verify(&h, &d, &sig));
    }

    #[test]
    fn wrong_digest_rejected() {
        let h = Hasher::default();
        let kp = test_keypair();
        let d1 = h.hash(HashDomain::Data, b"message");
        let d2 = h.hash(HashDomain::Data, b"other");
        let sig = kp.sign(&h, &d1);
        assert!(!kp.public().verify(&h, &d2, &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let h = Hasher::default();
        let kp = test_keypair();
        let d = h.hash(HashDomain::Data, b"message");
        let sig = kp.sign(&h, &d);
        let mut bytes = sig.to_bytes();
        bytes[5] ^= 0x40;
        let forged = Signature::from_bytes(&bytes);
        assert!(!kp.public().verify(&h, &d, &forged));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let h = Hasher::default();
        let kp = test_keypair();
        let d = h.hash(HashDomain::Data, b"serialize me");
        let sig = kp.sign(&h, &d);
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), kp.public().signature_len());
        let back = Signature::from_bytes(&bytes);
        assert_eq!(back, sig);
        assert!(kp.public().verify(&h, &d, &back));
    }

    #[test]
    fn deterministic_keygen() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let k1 = Keypair::generate(256, &mut r1);
        let k2 = Keypair::generate(256, &mut r2);
        assert_eq!(k1.public().modulus(), k2.public().modulus());
    }

    #[test]
    fn signature_len_matches_key() {
        let kp = test_keypair();
        assert_eq!(kp.public().signature_len(), 64);
        assert_eq!(kp.public().bits(), 512);
    }

    #[test]
    fn cross_key_verification_fails() {
        let h = Hasher::default();
        let kp1 = test_keypair();
        let mut rng = StdRng::seed_from_u64(1234);
        let kp2 = Keypair::generate(256, &mut rng);
        let d = h.hash(HashDomain::Data, b"msg");
        let sig = kp1.sign(&h, &d);
        assert!(!kp2.public().verify(&h, &d, &sig));
    }
}
