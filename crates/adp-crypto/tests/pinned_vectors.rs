//! Pinned byte vectors: every output of the crypto substrate, frozen.
//!
//! These hex constants were captured from the implementation **before** the
//! Montgomery/SHA hot-path overhaul (PR 3) and must never change: the
//! optimizations rework *how* signatures, digests, chains, and aggregates
//! are computed, but a single flipped output byte would silently invalidate
//! every published signature chain and VO. If any assertion here fails, the
//! fast path has diverged from the scheme — fix the kernel, never the
//! constant.
//!
//! Coverage: deterministic 512-bit keygen (8-limb CRT halves via the
//! generic kernel, 8-limb modulus via the fixed kernel), a 768-bit key
//! (12-limb modulus: generic kernel), FDH signatures, condensed
//! aggregation, tagged hash chains at both digest lengths, Merkle roots,
//! multi-part link hashing, and counter-mode FDH expansion.

use adp_crypto::{
    chain_from_value, AggregateSignature, HashDomain, Hasher, Keypair, MerkleTree, Signature,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn kp512() -> &'static Keypair {
    static K: OnceLock<Keypair> = OnceLock::new();
    K.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x0ADB_5EED);
        Keypair::generate(512, &mut rng)
    })
}

fn kp768() -> &'static Keypair {
    static K: OnceLock<Keypair> = OnceLock::new();
    K.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x0768);
        Keypair::generate(768, &mut rng)
    })
}

const N512: &str = "8e3d8098156f3cfcdac85cd5ccc7c31d50a4c8c8582a37ba4b2079fcdce6e8af454c736331034a8fd5919d300e8d9677faa135f8dd99d866738aabb267ad816d";
const N768: &str = "b82438ddd90992afecc479072e63c5ab1d23f5613a0c5da6962d71a4e7674261470ae7f972c16c231085a1b11b1ff7a2d0aac78fb16332687fc5ef9bc9c8282432b30e79119b65882b4b937361b17764a0333b55bf0fb0ad8064e391ff5a1ad7";

const DIGESTS16: [&str; 4] = [
    "dc0331a295162a30509446bd62272b81",
    "47231caa778c32ed992567c949fc8569",
    "b3101638dd4b511fe790ce1491f6c7db",
    "8b86bea6c652fadf505cb52ea408c8d1",
];

const SIGS512: [&str; 4] = [
    "0aecc3e716319df7180feb87d9013dae3c85c998fdedcf40dd1d1b7a1b63216505aad12c259f8e980318cbb672a6ab620837ef4fb2b9038010fb70f41da826a1",
    "2d60e7a84d1aebf9a2df2dfb1779389e82fffe40db2c512eeca7400e916e049dc7c5bd9363385177251ffc78d55697132c7c97425391b9266fecf16a68dd965a",
    "87ee47e3c6ab7321edb21cbae9d4ea7b09325baf9fab4ad38a6a87582a9df1fc7cc6fb626fb052c2d0bb45ee562da6f1999db94b54de777b57d34b772ef717d3",
    "6ca6e73a3e1d43154ca754082d66def10f79cb4faebf9945a0e6b3613bd5458ab76d6ce313162597d58914573c353fcd4d4cdf0da280059cb4c3a49138dfb037",
];

const AGG512: &str = "835867f2c5678869aa73403a0bd208ed69e244a6e3a810522593982854baea949bc2db5228f55a52f7d982e439704ac1ab3b01115bee06d3e0a7873428acf7fa";

const SIG768: &str = "7c3fc27ccc580e3296b3c433724a38742179b32d20762155d3f67b87bde9ae2254341a9333815785c5a2513f5558c8162a127c663fc028701eba12d1c3ddf323050499e3f6b05bf5888e82548c449ff39053697c51effcf286c56f08e17033ba";

#[test]
fn keygen_is_byte_stable() {
    assert_eq!(kp512().public().modulus().to_hex(), N512);
    assert_eq!(kp512().public().exponent().to_hex(), "10001");
    assert_eq!(kp768().public().modulus().to_hex(), N768);
}

#[test]
fn digests_are_byte_stable() {
    let h16 = Hasher::new(16);
    for (i, expected) in DIGESTS16.iter().enumerate() {
        let d = h16.hash(HashDomain::Data, format!("pin-{i}").as_bytes());
        assert_eq!(&d.to_hex(), expected, "digest {i}");
    }
}

#[test]
fn signatures_are_byte_stable() {
    let h16 = Hasher::new(16);
    for (i, expected) in SIGS512.iter().enumerate() {
        let d = h16.hash(HashDomain::Data, format!("pin-{i}").as_bytes());
        let sig = kp512().sign(&h16, &d);
        assert_eq!(&hex(&sig.to_bytes()), expected, "signature {i}");
        assert!(kp512().public().verify(&h16, &d, &sig));
    }
}

#[test]
fn generic_width_signature_is_byte_stable() {
    // 768-bit modulus = 12 limbs: exercises the generic CIOS fallback for
    // the full-modulus verify and 6-limb CRT halves for signing.
    let h32 = Hasher::new(32);
    let d = h32.hash(HashDomain::Data, b"pin-768");
    let sig = kp768().sign(&h32, &d);
    assert_eq!(hex(&sig.to_bytes()), SIG768);
    assert!(kp768().public().verify(&h32, &d, &sig));
}

#[test]
fn aggregate_is_byte_stable() {
    let h16 = Hasher::new(16);
    let digests: Vec<_> = (0..4)
        .map(|i| h16.hash(HashDomain::Data, format!("pin-{i}").as_bytes()))
        .collect();
    let sigs: Vec<Signature> = digests.iter().map(|d| kp512().sign(&h16, d)).collect();
    let refs: Vec<&Signature> = sigs.iter().collect();
    let agg = AggregateSignature::combine(kp512().public(), &refs);
    assert_eq!(hex(&agg.to_bytes()), AGG512);
    assert!(agg.verify(&h16, kp512().public(), &digests));
}

#[test]
fn chains_are_byte_stable() {
    let h16 = Hasher::new(16);
    let h32 = Hasher::new(32);
    assert_eq!(
        chain_from_value(&h16, b"pinned-value", 7, 129).to_hex(),
        "8b490cbc399355b7367ed95d211db759"
    );
    assert_eq!(
        chain_from_value(&h32, b"pinned-value", 0x8000_0003, 64).to_hex(),
        "3a0dce3e528968b0527cf7451499cff4d23d54cfc522a1004f757f40d2877643"
    );
}

#[test]
fn merkle_root_is_byte_stable() {
    let h16 = Hasher::new(16);
    let leaves: Vec<_> = (0..9u32)
        .map(|i| h16.hash(HashDomain::Leaf, &i.to_le_bytes()))
        .collect();
    let tree = MerkleTree::build(h16, leaves);
    assert_eq!(tree.root().to_hex(), "303bc289b1d7152e07b51750cdefb8de");
}

#[test]
fn link_hash_is_byte_stable() {
    let h32 = Hasher::new(32);
    let single = h32.hash_parts(HashDomain::Link, &[b"left", b"center", b"right"]);
    assert_eq!(
        single.to_hex(),
        "1b9125727b768a191a7555f6db3c3facbac687cd6dedc1aad67926c3e5b6379b"
    );
    // The bulk owner-side path must agree with the pinned single-link form.
    let bulk = h32.hash_triple_windows(HashDomain::Link, &[b"left", b"center", b"right"]);
    assert_eq!(bulk.len(), 1);
    assert_eq!(bulk[0], single);
}

#[test]
fn fdh_expansion_is_byte_stable() {
    let h16 = Hasher::new(16);
    assert_eq!(
        hex(&h16.expand(b"pinned-seed", 96)),
        "d3d924e3e269029f6526106d91d9db5ec5252030f9b320a4f91635b3cab8d41107388ad5b7b0f0e3d25633cec41c6059240f071b2ccab6296506456289e8d6980d36bc07fbe6c83becc27e415314eabc9f22d561cc82f4b0e670a85bb8bead24"
    );
}
