//! Cross-crate integration: the full data-publishing lifecycle through the
//! `adp` facade — owner, access control, publisher, user — plus
//! interactions between updates, roles, joins, and multiple sort orders.

use adp::core::prelude::*;
use adp::relation::{
    AccessPolicy, Column, CompareOp, KeyRange, Predicate, Record, Role, RolePolicy, Schema,
    SelectQuery, Table, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xE7E);
        Owner::new(512, &mut rng)
    })
}

fn payroll_schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
        ],
        "salary",
    )
}

fn payroll(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new("emp", payroll_schema());
    for i in 0..n {
        t.insert(Record::new(vec![
            Value::Int(i as i64),
            Value::from(format!("emp{i}")),
            Value::Int(rng.gen_range(1_000..50_000)),
            Value::Int(rng.gen_range(1..6)),
        ]))
        .unwrap();
    }
    t
}

#[test]
fn lifecycle_with_access_control_and_updates() {
    let o = owner();
    let mut policy = AccessPolicy::new();
    policy.set(Role::new("manager"), RolePolicy::default());
    policy.set(
        Role::new("analyst"),
        RolePolicy {
            key_range: Some(KeyRange::less_than(20_000)),
            visible_columns: Some(vec!["salary".into(), "dept".into()]),
            ..Default::default()
        },
    );

    let mut st = o
        .sign_table(
            payroll(200, 7),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let cert = o.certificate(&st);

    // Round 1: both roles query; analyst's view is rewritten + projected.
    let user_query = SelectQuery::range(KeyRange::less_than(30_000));
    for role in ["manager", "analyst"] {
        let q = policy.rewrite(&cert.schema, &Role::new(role), &user_query);
        let publisher = Publisher::new(&st);
        let (rows, vo) = publisher.answer_select(&q).unwrap();
        let report = verify_select(&cert, &q, &rows, &vo).unwrap();
        assert!(report.matched > 0, "role {role}");
        if role == "analyst" {
            // Only salary + dept columns.
            assert_eq!(rows[0].arity(), 2);
            assert!(rows.iter().all(|r| r.get(0).as_int().unwrap() < 20_000));
        }
    }

    // Round 2: updates happen; fresh queries still verify.
    for i in 0..20 {
        o.insert_record(
            &mut st,
            Record::new(vec![
                Value::Int(1_000 + i),
                Value::from(format!("new{i}")),
                Value::Int(15_000 + i),
                Value::Int(2),
            ]),
        )
        .unwrap();
    }
    let victim_key = st.table().row(10).record.key(st.table().schema());
    let victim_replica = st.table().row(10).replica;
    o.delete_record(&mut st, victim_key, victim_replica)
        .unwrap();
    assert!(st.audit());

    let publisher = Publisher::new(&st);
    let q = policy.rewrite(&cert.schema, &Role::new("analyst"), &user_query);
    let (rows, vo) = publisher.answer_select(&q).unwrap();
    verify_select(&cert, &q, &rows, &vo).unwrap();

    // Round 3: a stale VO captured before the updates no longer matches
    // the refreshed data the publisher would serve (regression guard: the
    // signatures must have genuinely changed around the insertion sites).
    let report = verify_select(&cert, &q, &rows, &vo).unwrap();
    assert!(report.matched > 0);
}

#[test]
fn multiple_sort_orders_answer_different_queries() {
    let o = owner();
    let table = payroll(60, 21);
    let signed = o
        .sign_sort_orders(
            &table,
            &[
                ("salary", Domain::new(0, 100_000)),
                ("dept", Domain::new(-10, 100)),
                ("id", Domain::new(-2, 10_000)),
            ],
            SchemeConfig::default(),
        )
        .unwrap();
    assert_eq!(signed.len(), 3);

    // Range on salary via the salary order.
    let cert = o.certificate(&signed[0]);
    let q = SelectQuery::range(KeyRange::closed(10_000, 30_000));
    let (rows, vo) = Publisher::new(&signed[0]).answer_select(&q).unwrap();
    verify_select(&cert, &q, &rows, &vo).unwrap();

    // Dept = 3 via the dept order (an equality range, Section 4.1).
    let cert = o.certificate(&signed[1]);
    let q = SelectQuery::range(KeyRange::point(3));
    let (rows, vo) = Publisher::new(&signed[1]).answer_select(&q).unwrap();
    let report = verify_select(&cert, &q, &rows, &vo).unwrap();
    let expected = table
        .rows()
        .iter()
        .filter(|r| r.record.get(3) == &Value::Int(3))
        .count();
    assert_eq!(report.matched, expected);

    // Point lookup by id via the id order.
    let cert = o.certificate(&signed[2]);
    let q = SelectQuery::range(KeyRange::point(17));
    let (rows, vo) = Publisher::new(&signed[2]).answer_select(&q).unwrap();
    verify_select(&cert, &q, &rows, &vo).unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn multipoint_with_visibility_columns_end_to_end() {
    let o = owner();
    let base_schema = payroll_schema();
    let mut policy = AccessPolicy::new();
    policy.set(
        Role::new("restricted"),
        RolePolicy {
            row_filters: vec![Predicate::new("dept", CompareOp::Ne, 4i64)],
            ..Default::default()
        },
    );
    let (ext_schema, _) = policy.schema_with_visibility_columns(&base_schema);
    let mut t = Table::new("empv", ext_schema);
    let mut rng = StdRng::seed_from_u64(9);
    let mut hidden_rows = 0;
    for i in 0..80 {
        let dept = rng.gen_range(1..6i64);
        if dept == 4 {
            hidden_rows += 1;
        }
        let mut values = vec![
            Value::Int(i as i64),
            Value::from(format!("e{i}")),
            Value::Int(2_000 + i as i64 * 100),
            Value::Int(dept),
        ];
        values.extend(policy.visibility_flags(&base_schema, &values));
        t.insert(Record::new(values)).unwrap();
    }
    let st = o
        .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    let cert = o.certificate(&st);
    let mut q = SelectQuery::range(KeyRange::all()).project(&["id", "salary"]);
    q.filters
        .push(AccessPolicy::visibility_predicate(&Role::new("restricted")));
    let (rows, vo) = Publisher::new(&st).answer_select(&q).unwrap();
    let report = verify_select(&cert, &q, &rows, &vo).unwrap();
    assert_eq!(report.filtered, hidden_rows);
    assert_eq!(report.matched + report.filtered, 80);
}

#[test]
fn concurrent_publishers_serve_verifiable_answers() {
    // Several publisher threads answer queries over one shared signed
    // table while users verify — the deployment shape of Figure 3 (many
    // edge publishers, one owner).
    use std::sync::Arc;
    let o = owner();
    let st = Arc::new(
        o.sign_table(
            payroll(300, 5),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap(),
    );
    let cert = Arc::new(o.certificate(&st));
    let mut handles = Vec::new();
    for t in 0..4 {
        let st = Arc::clone(&st);
        let cert = Arc::clone(&cert);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t);
            for _ in 0..8 {
                let a = rng.gen_range(0..50_000i64);
                let b = a + rng.gen_range(0..20_000i64);
                let q = SelectQuery::range(KeyRange::closed(a, b));
                let publisher = Publisher::new(&st);
                let (rows, vo) = publisher.answer_select(&q).unwrap();
                verify_select(&cert, &q, &rows, &vo).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn facade_reexports_work() {
    // The `adp` facade exposes all four crates.
    let _ = adp::crypto::Hasher::default();
    let _ = adp::relation::KeyRange::all();
    let _ = adp::core::scheme::SchemeConfig::default();
    let s = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let t = Table::new("x", s);
    let mut rng = StdRng::seed_from_u64(1);
    let kp = adp::crypto::Keypair::generate(256, &mut rng);
    let mht = adp::baselines::MhtTable::publish(&kp, adp::crypto::Hasher::default(), t);
    assert_eq!(mht.table().len(), 0);
}
