//! A fixed-capacity LRU map backing the server's VO cache.
//!
//! The server keys entries on `(table_id, canonical query)` — the query's
//! range is normalized against the table's key domain first, so e.g.
//! `K < 100` and `K ≤ 99` share one entry. Values are the already-encoded
//! `(result, vo)` byte blobs behind an `Arc`, so a hit clones two pointers
//! and writes straight to the socket without re-running the publisher or
//! the codec.
//!
//! The implementation is a standard intrusive doubly-linked list over a
//! slab of nodes plus a `HashMap` from key to slab index: `get`, `insert`
//! and eviction are all O(1). No external crates — `std` only, like the
//! rest of the server.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    /// `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A least-recently-used map with a fixed capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    /// Slab slots vacated by [`LruCache::remove`], recycled before the
    /// slab grows.
    free: Vec<usize>,
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// If `capacity` is zero (use `Option<LruCache>` to disable caching).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruCache capacity must be non-zero");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            free: Vec::new(),
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.slab[idx].value.as_ref()
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when at capacity. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = Some(value);
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        if let Some(idx) = self.free.pop() {
            // Recycle a slot vacated by remove().
            self.slab[idx].key = key.clone();
            self.slab[idx].value = Some(value);
            self.map.insert(key, idx);
            self.attach_front(idx);
            return None;
        }
        if self.map.len() == self.capacity {
            // Recycle the LRU node's slot for the new entry.
            let lru = self.tail;
            self.detach(lru);
            let old_key = std::mem::replace(&mut self.slab[lru].key, key.clone());
            let old_value = self.slab[lru].value.replace(value);
            self.map.remove(&old_key);
            self.map.insert(key, lru);
            self.attach_front(lru);
            return old_value.map(|v| (old_key, v));
        }
        self.slab.push(Node {
            key: key.clone(),
            value: Some(value),
            prev: NIL,
            next: NIL,
        });
        let idx = self.slab.len() - 1;
        self.map.insert(key, idx);
        self.attach_front(idx);
        None
    }

    /// Removes `key` (e.g. an entry invalidated by a table update),
    /// returning its value. The vacated slab slot joins the free list and
    /// is recycled by a later insert.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.slab[idx].value.take()
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c: LruCache<u32, &'static str> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1), Some(&10));
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_updates_value_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn slot_reuse_after_eviction_chain() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..100u32 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 3);
        for i in 97..100u32 {
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        // The slab never grew past capacity.
        assert!(c.slab.len() <= 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    fn remove_vacates_and_recycles_slots() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.len(), 1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.remove(&1), None);
        // The vacated slot is recycled: no eviction, no slab growth.
        assert_eq!(c.insert(3, 30), None);
        assert_eq!(c.len(), 2);
        assert!(c.slab.len() <= 2);
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
        // Eviction still works after the recycle dance.
        let evicted = c.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
    }

    #[test]
    fn remove_head_and_tail_keep_list_consistent() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.remove(&3), Some(30)); // head
        assert_eq!(c.remove(&1), Some(10)); // tail
        assert_eq!(c.get(&2), Some(&20));
        c.insert(4, 40);
        c.insert(5, 50);
        assert_eq!(c.len(), 3);
        for (k, v) in [(2, 20), (4, 40), (5, 50)] {
            assert_eq!(c.get(&k), Some(&v));
        }
    }
}
