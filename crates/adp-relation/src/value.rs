//! Typed attribute values.
//!
//! The engine supports the types the paper's examples need: 64-bit integers
//! (keys such as `Salary`), text (`Name`), raw bytes (`Photo` — the BLOB the
//! paper uses to motivate projection-aware verification), and booleans (the
//! per-role visibility columns of Section 4.4 Case 2).

use std::cmp::Ordering;
use std::fmt;

/// The type of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    Int,
    Text,
    Bytes,
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Text => "TEXT",
            ValueType::Bytes => "BYTES",
            ValueType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single attribute value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    Int(i64),
    Text(String),
    Bytes(Vec<u8>),
    Bool(bool),
}

impl Value {
    /// The value's type.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Text(_) => ValueType::Text,
            Value::Bytes(_) => ValueType::Bytes,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Canonical byte encoding (type tag + payload). Injective per type, so
    /// hashing the encoding is collision-free across values.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Value::Int(v) => {
                out.push(0x01);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(0x02);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(0x03);
                out.extend_from_slice(b);
            }
            Value::Bool(b) => {
                out.push(0x04);
                out.push(*b as u8);
            }
        }
        out
    }

    /// Size of the value on the wire, in bytes (payload + 1 type byte +
    /// 4-byte length for variable-size types). This drives the paper's
    /// `M_r` (record size) accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Int(_) => 1 + 8,
            Value::Text(s) => 1 + 4 + s.len(),
            Value::Bytes(b) => 1 + 4 + b.len(),
            Value::Bool(_) => 1 + 1,
        }
    }

    /// Total ordering within the same type; `None` across types.
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}B'", b.len()),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_reporting() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::from("x").value_type(), ValueType::Text);
        assert_eq!(Value::from(vec![1u8]).value_type(), ValueType::Bytes);
        assert_eq!(Value::from(true).value_type(), ValueType::Bool);
    }

    #[test]
    fn encode_injective_within_type() {
        assert_ne!(Value::Int(1).encode(), Value::Int(2).encode());
        assert_ne!(Value::from("a").encode(), Value::from("b").encode());
    }

    #[test]
    fn encode_tags_differ_across_types() {
        // 1i64 and the text "1" must never encode identically.
        assert_ne!(Value::Int(49).encode()[0], Value::from("1").encode()[0]);
    }

    #[test]
    fn ordering_same_type() {
        assert_eq!(
            Value::Int(3).partial_cmp_typed(&Value::Int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from("b").partial_cmp_typed(&Value::from("a")),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn ordering_cross_type_is_none() {
        assert_eq!(Value::Int(3).partial_cmp_typed(&Value::from("3")), None);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Int(7).wire_size(), 9);
        assert_eq!(Value::from("abc").wire_size(), 8);
        assert_eq!(Value::from(vec![0u8; 10]).wire_size(), 15);
        assert_eq!(Value::from(true).wire_size(), 2);
    }
}
