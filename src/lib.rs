//! Facade crate; see crates/*.
pub use adp_baselines as baselines;
pub use adp_core as core;
pub use adp_crypto as crypto;
pub use adp_relation as relation;
