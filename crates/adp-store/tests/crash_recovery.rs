//! The crash-recovery torture matrix: a supervised child process dies —
//! `abort()`, i.e. no cleanup, the on-disk equivalent of `kill -9` — at
//! named crash points and at arbitrary mid-write instructions while
//! applying batches and compacting, and the parent asserts that **every**
//! death leaves a store that (a) opens, (b) passes a full signature
//! audit, and (c) is byte-identical to a committed prefix of the batch
//! stream. This extends PR 4's byte-flip proptests from corrupt *files*
//! to whole-process death.
//!
//! Mechanics: the parent re-execs this very test binary with
//! `ADP_TORTURE_DIR` (plus `ADP_CRASH_POINT` or the write-op crash vars)
//! set; the child runs [`torture_child`], which builds the deterministic
//! fixture workload and dies wherever the environment says. Both sides
//! share one seed, so the parent can recompute the expected table at any
//! committed prefix and compare encoded snapshots byte for byte.

use adp_core::prelude::*;
use adp_faults::{DiskFault, FaultPlan, FaultyIo, RealIo, StoreIo};
use adp_relation::{Column, Record, Schema, Table, Value, ValueType};
use adp_store::format::encode_snapshot;
use adp_store::{Store, StoreError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const DIR_ENV: &str = "ADP_TORTURE_DIR";
const CRASH_OP_ENV: &str = "ADP_TORTURE_CRASH_WRITE_OP";
const CRASH_KEEP_ENV: &str = "ADP_TORTURE_CRASH_KEEP";

/// Batches the child applies; the parent replays the same stream.
const BATCHES: u64 = 3;
/// The child compacts after this many batches (then applies the rest).
const COMPACT_AFTER: u64 = 2;

fn owner_and_table() -> (Owner, SignedTable) {
    let mut rng = StdRng::seed_from_u64(0xDEAD_C0DE);
    let owner = Owner::new(512, &mut rng);
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Text),
        ],
        "k",
    );
    let mut t = Table::new("torture", schema);
    for i in 0..5i64 {
        t.insert(Record::new(vec![
            Value::Int(100 + i * 13),
            Value::from(format!("base{i}")),
        ]))
        .unwrap();
    }
    let st = owner
        .sign_table(t, Domain::new(0, 10_000), SchemeConfig::default())
        .unwrap();
    (owner, st)
}

/// The deterministic mutation stream: batch `i` inserts one row and,
/// from batch 1 on, deletes the row batch `i - 1` inserted.
fn batch(i: u64) -> Vec<Mutation> {
    let mut ops = vec![Mutation::Insert(Record::new(vec![
        Value::Int(1_000 + i as i64),
        Value::from(format!("b{i}")),
    ]))];
    if i > 0 {
        ops.push(Mutation::Delete {
            key: 1_000 + i as i64 - 1,
            replica: 0,
        });
    }
    ops
}

/// The expected signed table after `seq` committed batches.
fn expected_table_at(seq: u64) -> SignedTable {
    let (owner, mut st) = owner_and_table();
    for i in 0..seq {
        owner.apply_batch(&mut st, batch(i)).unwrap();
    }
    st
}

/// The child's workload: create, apply, compact mid-stream, apply the
/// rest. Crash points / the faulty I/O decide where (whether) it dies.
///
/// This is an `#[ignore]`d test so ordinary runs skip it; the parent
/// invokes it by name with the environment armed.
#[test]
#[ignore = "torture child: only meaningful when spawned by the matrix"]
fn torture_child() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return;
    };
    let io: Arc<dyn StoreIo> = match std::env::var(CRASH_OP_ENV) {
        Ok(op) => {
            let op: u64 = op.parse().unwrap();
            let keep: u32 = std::env::var(CRASH_KEEP_ENV)
                .map(|k| k.parse().unwrap())
                .unwrap_or(0);
            Arc::new(FaultyIo::new(
                FaultPlan::clean().force_disk(op, DiskFault::CrashHere { keep }),
            ))
        }
        Err(_) => Arc::new(RealIo),
    };
    let (owner, st) = owner_and_table();
    let mut store = Store::create_with_io(&dir, st, io).unwrap();
    for i in 0..BATCHES {
        if i == COMPACT_AFTER {
            store.compact().unwrap();
        }
        store.apply_batch(&owner, batch(i)).unwrap();
    }
    // Reached only when the armed crash never fired (e.g. a write-op
    // index past the workload's op count): exit cleanly.
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adp-torture-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the torture child with `envs`; returns true if it died by
/// signal (the armed crash fired), false if it exited cleanly.
fn run_child(dir: &Path, envs: &[(&str, String)]) -> bool {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args([
        "torture_child",
        "--exact",
        "--ignored",
        "--test-threads",
        "1",
        // Without this, libtest buffers the child's stderr in memory and
        // the abort marker dies with the process.
        "--nocapture",
    ])
    .env(DIR_ENV, dir);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().unwrap();
    if out.status.code() == Some(0) {
        return false;
    }
    // libtest reports a crashed test as a failure even when the whole
    // process aborted; either way a nonzero/signal status means the
    // armed crash fired. Sanity-check the abort marker to be sure we
    // are not masking an ordinary test failure.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("aborting"),
        "child failed without hitting the armed crash:\n{stderr}"
    );
    true
}

/// Opens the post-crash store and asserts the recovery invariants:
/// it opens, audits, and equals a committed prefix byte for byte.
fn assert_committed_prefix(dir: &Path, context: &str) {
    let snap_exists = dir.join(adp_store::SNAPSHOT_FILE).exists();
    if !snap_exists {
        // Death before `create` committed its snapshot: the store never
        // existed. The only acceptable outcome is a clean not-found, not
        // a half-created directory that opens into garbage.
        match Store::open(dir) {
            Err(StoreError::Io(e)) => {
                assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::NotFound,
                    "{context}: unexpected open error before creation committed"
                );
            }
            Err(e) => panic!("{context}: unexpected error {e}"),
            Ok(_) => panic!("{context}: opened a store whose creation never committed"),
        }
        return;
    }
    let store = Store::open(dir)
        .unwrap_or_else(|e| panic!("{context}: store failed to open after crash: {e}"));
    assert!(store.audit(), "{context}: audit failed after crash");
    let seq = store.next_seq();
    assert!(
        seq <= BATCHES,
        "{context}: recovered past the applied stream (seq {seq})"
    );
    let expected = expected_table_at(seq);
    assert_eq!(
        encode_snapshot(store.table(), seq),
        encode_snapshot(&expected, seq),
        "{context}: recovered table is not byte-identical to prefix {seq}"
    );
}

/// The named-crash-point matrix: every append boundary of every batch,
/// every compaction boundary, and the create gap.
#[test]
fn kill_matrix_named_crash_points() {
    let mut points: Vec<String> = vec!["store.create.between".into()];
    for k in 0..BATCHES {
        points.push(format!("store.append.before@{k}"));
        points.push(format!("store.append.after@{k}"));
    }
    for p in [
        "store.compact.before_snapshot",
        "store.compact.after_snapshot",
        "store.compact.after_log",
    ] {
        points.push(p.into());
    }
    for point in points {
        let dir = fresh_dir("point");
        let crashed = run_child(&dir, &[(adp_faults::CRASH_ENV, point.clone())]);
        assert!(crashed, "crash point {point} never fired");
        assert_committed_prefix(&dir, &format!("crash point {point}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The mid-write matrix: die at every write-class I/O operation the
/// workload performs, leaving 0 bytes (death before the write lands)
/// and again leaving a 5-byte torn prefix.
#[test]
fn kill_matrix_mid_write() {
    // Count the workload's write ops with a clean probe run first, so
    // the matrix stays exact if the workload changes.
    let probe_dir = fresh_dir("probe");
    let probe_io = Arc::new(FaultyIo::new(FaultPlan::clean()));
    {
        let (owner, st) = owner_and_table();
        let mut store =
            Store::create_with_io(&probe_dir, st, Arc::clone(&probe_io) as Arc<dyn StoreIo>)
                .unwrap();
        for i in 0..BATCHES {
            if i == COMPACT_AFTER {
                store.compact().unwrap();
            }
            store.apply_batch(&owner, batch(i)).unwrap();
        }
    }
    let total_ops = probe_io.ops();
    let _ = std::fs::remove_dir_all(&probe_dir);
    assert!(total_ops > 0);

    for op in 0..total_ops {
        for keep in [0u32, 5] {
            let dir = fresh_dir("op");
            let crashed = run_child(
                &dir,
                &[
                    (CRASH_OP_ENV, op.to_string()),
                    (CRASH_KEEP_ENV, keep.to_string()),
                ],
            );
            assert!(crashed, "write-op crash {op} (keep {keep}) never fired");
            assert_committed_prefix(&dir, &format!("write-op {op} keep {keep}"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A crash past the workload's final write op never fires: the child
/// completes, and the store equals the full stream.
#[test]
fn crash_past_the_end_is_a_clean_run() {
    let dir = fresh_dir("clean");
    let crashed = run_child(&dir, &[(CRASH_OP_ENV, "10000".to_string())]);
    assert!(!crashed);
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.next_seq(), BATCHES);
    assert!(store.audit());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient (non-fatal) injected faults: the store must reject the
/// batch, keep serving the old state, and accept the retry once the
/// fault clears — and a reopen must agree.
#[test]
fn transient_disk_faults_roll_back_and_recover() {
    for fault in [
        DiskFault::Enospc,
        DiskFault::FailFsync,
        DiskFault::ShortWrite { keep: 6 },
    ] {
        let dir = fresh_dir("transient");
        let (owner, st) = owner_and_table();
        // Ops 0..6 are create's; op 6 is batch 0's append.
        let io = Arc::new(FaultyIo::new(FaultPlan::clean().force_disk(6, fault)));
        let mut store =
            Store::create_with_io(&dir, st, Arc::clone(&io) as Arc<dyn StoreIo>).unwrap();
        let before = encode_snapshot(store.table(), 0);
        let err = store.apply_batch(&owner, batch(0)).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{fault:?}: {err}");
        assert_eq!(store.next_seq(), 0, "{fault:?} advanced the sequence");
        assert_eq!(
            encode_snapshot(store.table(), 0),
            before,
            "{fault:?} mutated the live table"
        );
        // The fault was one-shot: the retry commits.
        store.apply_batch(&owner, batch(0)).unwrap();
        assert_eq!(store.next_seq(), 1);
        drop(store);
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.next_seq(), 1, "{fault:?}: reopen disagrees");
        assert!(reopened.audit());
        assert_eq!(
            encode_snapshot(reopened.table(), 1),
            encode_snapshot(&expected_table_at(1), 1),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
