//! Quickstart: the paper's Section 3.1 running example.
//!
//! The owner publishes the sorted list R = (2000, 3500, 8010, 12100, 25000)
//! over the domain (0, 100000); a user asks for entries ≥ 10000; the
//! publisher returns (12100, 25000) plus a proof that nothing was omitted —
//! without revealing the neighbouring value 8010.
//!
//! Run with: `cargo run --release --example quickstart`

use adp::core::prelude::*;
use adp::core::wire;
use adp::relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ----- Owner side ---------------------------------------------------
    let schema = Schema::new(vec![Column::new("value", ValueType::Int)], "value");
    let mut table = Table::new("R", schema);
    for v in [2000i64, 3500, 8010, 12100, 25000] {
        table.insert(Record::new(vec![Value::Int(v)])).unwrap();
    }
    let domain = Domain::new(0, 100_000);
    let mut rng = StdRng::seed_from_u64(2005);
    let owner = Owner::new(1024, &mut rng);
    let signed = owner
        .sign_table(table, domain, SchemeConfig::default())
        .expect("keys fit the domain");
    let cert = owner.certificate(&signed);
    println!(
        "owner: signed {} entries (+2 delimiters) over domain (0, 100000)",
        signed.len()
    );
    println!(
        "owner → publisher: data + {} bytes of signatures",
        signed.dissemination_size()
    );

    // ----- Publisher side ------------------------------------------------
    let query = SelectQuery::range(KeyRange::at_least(10_000));
    let publisher = Publisher::new(&signed);
    let (result, vo) = publisher.answer_select(&query).unwrap();
    let vo_bytes = wire::encode_vo(&vo);
    let result_bytes = wire::encode_records(&result);
    println!(
        "\npublisher: query `value >= 10000` → {} rows, {} result bytes + {} VO bytes",
        result.len(),
        result_bytes.len(),
        vo_bytes.len()
    );
    for r in &result {
        println!("  {r}");
    }

    // ----- User side ------------------------------------------------------
    let (decoded, report) = verify_select_wire(&cert, &query, &result_bytes, &vo_bytes)
        .expect("honest answer verifies");
    println!(
        "\nuser: verified completeness + authenticity ({} rows, {} signature(s) checked)",
        report.matched, report.signatures_verified
    );
    assert_eq!(decoded.len(), 2);

    // The proof hides the boundary value 8010: the VO only carries
    // intermediate hash digests, never the value itself.
    println!("user: the boundary value below 10000 was never disclosed (one-way chains)");

    // A cheating publisher that withholds 12100 is caught.
    let (mut bad_result, bad_vo) = publisher.answer_select(&query).unwrap();
    bad_result.remove(0);
    let verdict = verify_select(&cert, &query, &bad_result, &bad_vo);
    println!(
        "\ncheating publisher drops 12100 → verification says: {:?}",
        verdict.unwrap_err()
    );
}
