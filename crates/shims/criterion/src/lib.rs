//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the benchmark-authoring surface used by this workspace's
//! `benches/` (groups, `bench_function`, `iter`, `iter_batched`,
//! throughput annotations, the `criterion_group!`/`criterion_main!`
//! macros, and `black_box`) with a simple adaptive timing loop instead of
//! criterion's statistical machinery. Results are printed to stdout as
//! `group/name  median  mean  (throughput)` lines; no HTML reports.
//!
//! CLI behavior: a positional argument acts as a substring filter on
//! `group/name`; `--test` runs every benchmark exactly once (this is what
//! `cargo test --benches` passes); other flags cargo forwards (`--bench`)
//! are ignored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one measured iteration represents, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`. The shim runs one setup per
/// measured call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
struct RunMode {
    filter: Option<String>,
    /// `--test`: run each benchmark once and report nothing.
    smoke: bool,
}

impl RunMode {
    fn from_args() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        RunMode { filter, smoke }
    }
}

/// Entry point handed to each `criterion_group!` target.
pub struct Criterion {
    mode: RunMode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: RunMode::from_args(),
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Upstream parses CLI args here; the shim already did in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        run_one(&self.mode, &id, None, sample_size, f);
        self
    }

    /// Upstream flushes reports here; nothing to do in the shim.
    pub fn final_summary(&mut self) {}
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(&self.criterion.mode, &full, self.throughput, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; collects timing samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke: bool,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warmup and per-sample iteration calibration: aim each sample at
        // ~1ms so cheap routines aren't dominated by timer resolution.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.smoke {
            black_box(routine(setup()));
            return;
        }
        // Setup cost is excluded: the clock only covers the routine.
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(
    mode: &RunMode,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &mode.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        smoke: mode.smoke,
    };
    f(&mut b);
    if mode.smoke {
        return;
    }
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!("  {:.0} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
        }
    });
    println!(
        "{id:<48} median {median:>12?}  mean {mean:>12?}{}",
        rate.unwrap_or_default()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5);
            g.throughput(Throughput::Elements(10));
            g.bench_function("iter", |b| b.iter(|| ran = black_box(ran.wrapping_add(1))));
            g.bench_function("batched", |b| {
                b.iter_batched(|| 21u64, |x| black_box(x * 2), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert!(ran > 0, "the routine must actually run");
    }
}
