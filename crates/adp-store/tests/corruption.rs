//! Corrupt-file robustness: randomized truncation, bit flips, and garbage
//! extension of snapshot and log bytes must always surface as a typed
//! [`StoreError`] — never a panic, never silently wrong data. Case counts
//! are bounded and further capped by `PROPTEST_CASES` in CI.

use adp_core::prelude::*;
use adp_relation::{Column, Record, Schema, Table, Value, ValueType};
use adp_store::format::{decode_snapshot, encode_snapshot};
use adp_store::log::{check_log_header, decode_records, encode_record, log_header};
use adp_store::{LogRecord, Store};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// `(snapshot bytes, log bytes)` of a store with two applied batches.
fn fixture() -> &'static (Vec<u8>, Vec<u8>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FF);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("v", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("fuzz", schema);
        for i in 0..6i64 {
            t.insert(Record::new(vec![
                Value::Int(10 + i * 9),
                Value::from(format!("r{i}")),
            ]))
            .unwrap();
        }
        let mut st = owner
            .sign_table(t, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let snapshot = encode_snapshot(&st, 0);
        let mut log: Vec<u8> = log_header().to_vec();
        for (seq, ops) in [
            vec![Mutation::Insert(Record::new(vec![
                Value::Int(77),
                Value::from("new"),
            ]))],
            vec![Mutation::Delete {
                key: 10,
                replica: 0,
            }],
        ]
        .into_iter()
        .enumerate()
        {
            let report = owner.apply_batch(&mut st, ops).unwrap();
            log.extend_from_slice(&encode_record(&LogRecord {
                seq: seq as u64,
                ops: report.ops,
                resigned: report.resigned,
            }));
        }
        (snapshot, log)
    })
}

fn decode_log(bytes: &[u8]) -> Result<Vec<LogRecord>, adp_store::StoreError> {
    decode_records(check_log_header(bytes)?)
}

/// Writes a `(snapshot, log)` pair to a fresh directory and opens it.
fn open_with(snapshot: &[u8], log: &[u8]) -> Result<Store, adp_store::StoreError> {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adp-store-fuzz-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(adp_store::SNAPSHOT_FILE), snapshot).unwrap();
    std::fs::write(dir.join(adp_store::LOG_FILE), log).unwrap();
    let result = Store::open(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any bit flip anywhere in the snapshot is a typed error (every byte
    /// is CRC-covered).
    #[test]
    fn snapshot_bit_flip_rejected(pos in 0usize..1 << 16, bit in 0u8..8) {
        let (snapshot, _) = fixture();
        let mut bad = snapshot.clone();
        let idx = pos % bad.len();
        bad[idx] ^= 1 << bit;
        prop_assert!(decode_snapshot(&bad).is_err(), "flip at {idx}");
    }

    /// Any proper truncation of the snapshot is a typed error (three
    /// mandatory sections, exact end).
    #[test]
    fn snapshot_truncation_rejected(cut in 0usize..1 << 16) {
        let (snapshot, _) = fixture();
        let cut = cut % snapshot.len();
        prop_assert!(decode_snapshot(&snapshot[..cut]).is_err(), "cut at {cut}");
    }

    /// Trailing garbage after a complete snapshot is a typed error.
    #[test]
    fn snapshot_extension_rejected(tail in prop::collection::vec(any::<u8>(), 1..64)) {
        let (snapshot, _) = fixture();
        let mut bad = snapshot.clone();
        bad.extend_from_slice(&tail);
        prop_assert!(decode_snapshot(&bad).is_err());
    }

    /// Any bit flip anywhere in the log is a typed error.
    #[test]
    fn log_bit_flip_rejected(pos in 0usize..1 << 16, bit in 0u8..8) {
        let (_, log) = fixture();
        let mut bad = log.clone();
        let idx = pos % bad.len();
        bad[idx] ^= 1 << bit;
        prop_assert!(decode_log(&bad).is_err(), "flip at {idx}");
    }

    /// Truncating the log never panics: a cut at a record boundary is a
    /// legitimately shorter log; any other cut is a typed error.
    #[test]
    fn log_truncation_never_panics(cut in 0usize..1 << 16) {
        let (snapshot, log) = fixture();
        let cut = cut % log.len();
        match decode_log(&log[..cut]) {
            Err(_) => {} // typed error, fine
            Ok(records) => {
                prop_assert!(records.len() < 2, "a proper cut cannot keep both records");
                // A boundary cut must still reconstruct a verifiable table.
                let store = open_with(snapshot, &log[..cut]);
                prop_assert!(store.is_ok());
                prop_assert!(store.unwrap().audit());
            }
        }
    }

    /// Garbage appended to the log is a typed error.
    #[test]
    fn log_extension_rejected(tail in prop::collection::vec(any::<u8>(), 1..64)) {
        let (_, log) = fixture();
        let mut bad = log.clone();
        bad.extend_from_slice(&tail);
        prop_assert!(decode_log(&bad).is_err());
    }

    /// The full `Store::open` path over corrupted files returns typed
    /// errors and never panics. One carve-out since the crash-recovery
    /// work: a flip that *inflates the final record's length prefix* is
    /// byte-for-byte indistinguishable from a torn append (which open
    /// must recover from by rolling the tail back), so open may succeed —
    /// but then only ever with a shorter committed prefix that still
    /// audits. Suffix deletion was never locally detectable anyway: an
    /// attacker with file access can truncate at a record boundary and
    /// recompute nothing.
    #[test]
    fn store_open_survives_joint_corruption(
        which in 0u8..2,
        pos in 0usize..1 << 16,
        bit in 0u8..8,
    ) {
        let (snapshot, log) = fixture();
        let mut snapshot = snapshot.clone();
        let mut log = log.clone();
        if which == 0 {
            let idx = pos % snapshot.len();
            snapshot[idx] ^= 1 << bit;
            prop_assert!(open_with(&snapshot, &log).is_err());
        } else {
            let idx = pos % log.len();
            log[idx] ^= 1 << bit;
            match open_with(&snapshot, &log) {
                Err(_) => {} // detected: the common case
                Ok(store) => {
                    prop_assert!(
                        store.log_record_count() < 2,
                        "corruption opened with the full log intact (flip at {idx})"
                    );
                    prop_assert!(store.audit());
                }
            }
        }
    }
}

/// The pristine fixture really does open (guards the proptest premises).
#[test]
fn pristine_fixture_opens() {
    let (snapshot, log) = fixture();
    let store = open_with(snapshot, log).unwrap();
    assert!(store.audit());
    assert_eq!(store.table().len(), 6); // 6 + 1 insert - 1 delete
    assert_eq!(store.log_record_count(), 2);
}
