//! The data owner (Figure 3): signs tables, maintains them under updates.
//!
//! For a table sorted on `K` the owner inserts the two delimiters
//! (Section 3.1), computes `g(r)` for every entry (formula (3), Figure 7)
//! and signs each chain link `h(g(r_{i-1}) | g(r_i) | g(r_{i+1}))`
//! (formula (1)), with the domain edge anchors `h(L)` / `h(U)` flanking the
//! delimiters.
//!
//! Updates have the locality the paper highlights in Section 6.3: an
//! insert/delete/modify recomputes **three (or two) signatures** — the
//! record's own and its immediate neighbours' — instead of a root path of
//! digests as in Merkle-tree schemes. Signatures are additionally stored in
//! a [`BPlusTree`] keyed by `(K, replica)`; its node-visit counters feed
//! the `sec63_updates` experiment.

use crate::domain::Domain;
use crate::gdigest::{
    attr_tree, direction_commitment, g_of_delimiter, link_digest, Direction, GDigest,
};
use crate::repr::Radix;
use crate::scheme::{Mode, SchemeConfig};
use adp_crypto::{Digest, Hasher, Keypair, PublicKey, Signature};
use adp_relation::{BPlusTree, Record, Schema, SchemaError, Table};
use rand::RngCore;
use std::fmt;

/// Errors raised by owner operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OwnerError {
    /// A key value lies outside the legal key interval `[L+2, U-2]`.
    KeyOutOfDomain { key: i64 },
    /// The record does not match the table schema.
    Schema(SchemaError),
    /// The `(key, replica)` pair does not exist.
    NoSuchRecord { key: i64, replica: u32 },
    /// A dissemination payload carried the wrong number of signatures for
    /// the table (`n + 2` expected).
    SignatureCount { expected: usize, got: usize },
}

impl fmt::Display for OwnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnerError::KeyOutOfDomain { key } => {
                write!(f, "key {key} outside the domain's legal key interval")
            }
            OwnerError::Schema(e) => write!(f, "schema violation: {e}"),
            OwnerError::NoSuchRecord { key, replica } => {
                write!(f, "no record with key {key}, replica {replica}")
            }
            OwnerError::SignatureCount { expected, got } => {
                write!(f, "expected {expected} signatures for the table, got {got}")
            }
        }
    }
}

impl std::error::Error for OwnerError {}

impl From<SchemaError> for OwnerError {
    fn from(e: SchemaError) -> Self {
        OwnerError::Schema(e)
    }
}

/// What the owner publishes for users (over an authenticated channel, e.g.
/// a public-key certificate): everything needed to verify results.
#[derive(Clone, Debug)]
pub struct Certificate {
    pub table_name: String,
    pub schema: Schema,
    pub domain: Domain,
    pub config: SchemeConfig,
    pub public_key: PublicKey,
}

/// Per-chain-position authentication material.
#[derive(Clone, Debug)]
pub struct SignedEntry {
    /// The `g` triple of this entry.
    pub g: GDigest,
    /// Optimized mode: the rep-MHT roots (up, down) the publisher hands to
    /// users for Figure-8b entry verification.
    pub roots: Option<(Digest, Digest)>,
    /// `sig(r_i)` over the link digest.
    pub signature: Signature,
}

/// Cost accounting for one update operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Signatures recomputed (3 for insert/modify, 2 for delete).
    pub signatures_recomputed: usize,
    /// `g` digests recomputed (1 for insert/modify, 0 for delete).
    pub g_recomputed: usize,
    /// Leaf nodes of the signature B+-tree touched.
    pub index_leaves_touched: u64,
    /// Total B+-tree nodes touched.
    pub index_nodes_touched: u64,
}

/// A table signed for publishing: data + signature chain + signature index.
#[derive(Debug)]
pub struct SignedTable {
    table: Table,
    domain: Domain,
    config: SchemeConfig,
    hasher: Hasher,
    radix: Option<Radix>,
    /// Chain positions `0..=n+1`; position 0 and n+1 are the delimiters.
    entries: Vec<SignedEntry>,
    /// Signatures keyed by `(K, replica)` in B+-tree leaves (Section 6.3).
    sig_index: BPlusTree<Signature>,
    public_key: PublicKey,
}

impl SignedTable {
    /// The underlying table (real records only).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The key domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// The hasher.
    pub fn hasher(&self) -> &Hasher {
        &self.hasher
    }

    /// The radix (None in conceptual mode).
    pub fn radix(&self) -> Option<&Radix> {
        self.radix.as_ref()
    }

    /// Number of real records `n`.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table has no real records.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Chain entry at position `0..=n+1`.
    pub fn entry(&self, chain_pos: usize) -> &SignedEntry {
        &self.entries[chain_pos]
    }

    /// Number of chain positions (`n + 2`).
    pub fn chain_len(&self) -> usize {
        self.entries.len()
    }

    /// Key at a chain position (delimiters included).
    pub fn key_at(&self, chain_pos: usize) -> i64 {
        if chain_pos == 0 {
            self.domain.left_delimiter()
        } else if chain_pos == self.entries.len() - 1 {
            self.domain.right_delimiter()
        } else {
            self.table
                .row(chain_pos - 1)
                .record
                .key(self.table.schema())
        }
    }

    /// `(key, replica)` at a chain position.
    pub fn tree_key_at(&self, chain_pos: usize) -> (i64, u32) {
        if chain_pos == 0 {
            (self.domain.left_delimiter(), 0)
        } else if chain_pos == self.entries.len() - 1 {
            (self.domain.right_delimiter(), 0)
        } else {
            let row = self.table.row(chain_pos - 1);
            (row.record.key(self.table.schema()), row.replica)
        }
    }

    /// The signature B+-tree (for instrumentation).
    pub fn sig_index(&self) -> &BPlusTree<Signature> {
        &self.sig_index
    }

    /// The owner's public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }

    /// Bytes of authentication material the owner ships to the publisher:
    /// `n + 2` signatures (everything else is recomputable from the data).
    pub fn dissemination_size(&self) -> usize {
        self.entries.iter().map(|e| e.signature.byte_len()).sum()
    }

    /// The raw `g` bytes at a chain position (used by the publisher as
    /// opaque neighbour context).
    pub fn g_bytes(&self, chain_pos: usize) -> Vec<u8> {
        self.entries[chain_pos].g.to_bytes()
    }

    /// The link digest signed at `chain_pos` (recomputed from current `g`s).
    fn link_at(&self, chain_pos: usize) -> Digest {
        let prev = if chain_pos == 0 {
            crate::gdigest::edge_digest(&self.hasher, self.domain.l())
                .as_bytes()
                .to_vec()
        } else {
            self.entries[chain_pos - 1].g.to_bytes()
        };
        let next = if chain_pos == self.entries.len() - 1 {
            crate::gdigest::edge_digest(&self.hasher, self.domain.u())
                .as_bytes()
                .to_vec()
        } else {
            self.entries[chain_pos + 1].g.to_bytes()
        };
        link_digest(
            &self.hasher,
            &prev,
            &self.entries[chain_pos].g.to_bytes(),
            &next,
        )
    }

    /// Internal consistency check: every stored signature verifies against
    /// the recomputed link digest. `O(n)` signature verifications — test
    /// and debugging helper.
    pub fn audit(&self) -> bool {
        (0..self.entries.len()).all(|i| {
            self.public_key
                .verify(&self.hasher, &self.link_at(i), &self.entries[i].signature)
        })
    }
}

/// The data owner: holds the signing keypair.
pub struct Owner {
    keypair: Keypair,
}

impl SignedTable {
    /// Publisher-side reconstruction from disseminated parts: the owner
    /// ships only the data and the `n + 2` signatures (Figure 3); the
    /// publisher recomputes every digest itself and — since it should not
    /// serve data it cannot prove — audits the chain against the owner's
    /// public key.
    ///
    /// `signatures` must cover chain positions `0..=n+1` in order.
    pub fn from_parts(
        table: Table,
        domain: Domain,
        config: SchemeConfig,
        signatures: Vec<Signature>,
        public_key: PublicKey,
    ) -> Result<Self, OwnerError> {
        let hasher = config.hasher();
        let radix = match config.mode {
            Mode::Conceptual => None,
            Mode::Optimized { base } => Some(Radix::for_width(base, domain.width())),
        };
        for row in table.rows() {
            let k = row.record.key(table.schema());
            if !domain.contains_key(k) {
                return Err(OwnerError::KeyOutOfDomain { key: k });
            }
        }
        let n = table.len();
        if signatures.len() != n + 2 {
            return Err(OwnerError::SignatureCount {
                expected: n + 2,
                got: signatures.len(),
            });
        }
        let schema = table.schema().clone();
        let mut entries = Vec::with_capacity(n + 2);
        for (pos, signature) in signatures.into_iter().enumerate() {
            let (g, roots) = if pos == 0 {
                (
                    g_of_delimiter(
                        &hasher,
                        &config,
                        radix.as_ref(),
                        &domain,
                        domain.left_delimiter(),
                    ),
                    None,
                )
            } else if pos == n + 1 {
                (
                    g_of_delimiter(
                        &hasher,
                        &config,
                        radix.as_ref(),
                        &domain,
                        domain.right_delimiter(),
                    ),
                    None,
                )
            } else {
                let record = &table.row(pos - 1).record;
                let key = record.key(&schema);
                let up = direction_commitment(
                    &hasher,
                    &config,
                    radix.as_ref(),
                    &domain,
                    key,
                    Direction::Up,
                );
                let down = direction_commitment(
                    &hasher,
                    &config,
                    radix.as_ref(),
                    &domain,
                    key,
                    Direction::Down,
                );
                let attrs = attr_tree(&hasher, &schema, record).root();
                let roots = match (up.rep_tree.as_ref(), down.rep_tree.as_ref()) {
                    (Some(u), Some(d)) => Some((u.root(), d.root())),
                    _ => None,
                };
                (
                    GDigest {
                        up: up.component,
                        down: down.component,
                        attrs,
                    },
                    roots,
                )
            };
            entries.push(SignedEntry {
                g,
                roots,
                signature,
            });
        }
        let mut sig_index = BPlusTree::new(64);
        let mut st = SignedTable {
            table,
            domain,
            config,
            hasher,
            radix,
            entries,
            sig_index: BPlusTree::new(64),
            public_key,
        };
        for pos in 0..st.entries.len() {
            sig_index.insert(st.tree_key_at(pos), st.entries[pos].signature.clone());
        }
        st.sig_index = sig_index;
        Ok(st)
    }
}

impl Owner {
    /// Creates an owner with a fresh RSA keypair of `bits` bits
    /// (1024 matches the paper's `M_sign`; tests use 512 for speed).
    pub fn new(bits: usize, rng: &mut dyn RngCore) -> Self {
        Owner {
            keypair: Keypair::generate(bits, rng),
        }
    }

    /// The owner's public key.
    pub fn public_key(&self) -> &PublicKey {
        self.keypair.public()
    }

    /// Computes `g` and rep-roots for one record.
    fn materialize(
        &self,
        hasher: &Hasher,
        config: &SchemeConfig,
        radix: Option<&Radix>,
        domain: &Domain,
        schema: &Schema,
        record: &Record,
    ) -> (GDigest, Option<(Digest, Digest)>) {
        let key = record.key(schema);
        let up = direction_commitment(hasher, config, radix, domain, key, Direction::Up);
        let down = direction_commitment(hasher, config, radix, domain, key, Direction::Down);
        let attrs = attr_tree(hasher, schema, record).root();
        let roots = match (up.rep_tree.as_ref(), down.rep_tree.as_ref()) {
            (Some(u), Some(d)) => Some((u.root(), d.root())),
            _ => None,
        };
        (
            GDigest {
                up: up.component,
                down: down.component,
                attrs,
            },
            roots,
        )
    }

    /// Signs a table for publishing. `O(n)` hash chains + `n + 2` RSA
    /// signatures; parallelized across available cores.
    pub fn sign_table(
        &self,
        table: Table,
        domain: Domain,
        config: SchemeConfig,
    ) -> Result<SignedTable, OwnerError> {
        let hasher = config.hasher();
        let radix = match config.mode {
            Mode::Conceptual => None,
            Mode::Optimized { base } => Some(Radix::for_width(base, domain.width())),
        };
        // Validate all keys before doing any crypto work.
        for row in table.rows() {
            let k = row.record.key(table.schema());
            if !domain.contains_key(k) {
                return Err(OwnerError::KeyOutOfDomain { key: k });
            }
        }

        let n = table.len();
        let schema = table.schema().clone();
        // Materialize g for all chain positions 0..=n+1, in parallel.
        type Material = (GDigest, Option<(Digest, Digest)>);
        let mut materials: Vec<Option<Material>> = vec![None; n + 2];
        let threads = std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(n + 2);
        let chunk = (n + 2).div_ceil(threads);
        std::thread::scope(|s| {
            for (t, slot_chunk) in materials.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let table = &table;
                let schema = &schema;
                let radix = radix.as_ref();
                let domain = &domain;
                let config = &config;
                let hasher = &hasher;
                s.spawn(move || {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let pos = start + off;
                        let mat = if pos == 0 {
                            let g = g_of_delimiter(
                                hasher,
                                config,
                                radix,
                                domain,
                                domain.left_delimiter(),
                            );
                            (g, None)
                        } else if pos == n + 1 {
                            let g = g_of_delimiter(
                                hasher,
                                config,
                                radix,
                                domain,
                                domain.right_delimiter(),
                            );
                            (g, None)
                        } else {
                            self.materialize(
                                hasher,
                                config,
                                radix,
                                domain,
                                schema,
                                &table.row(pos - 1).record,
                            )
                        };
                        *slot = Some(mat);
                    }
                });
            }
        });
        let materials: Vec<Material> = materials.into_iter().map(Option::unwrap).collect();

        // Link digests over the whole chain in one bulk pass: each `g` is
        // serialized once and the edge anchors flank the run, instead of
        // re-encoding every neighbour triple.
        let edge_l = crate::gdigest::edge_digest(&hasher, domain.l())
            .as_bytes()
            .to_vec();
        let edge_u = crate::gdigest::edge_digest(&hasher, domain.u())
            .as_bytes()
            .to_vec();
        let encoded: Vec<Vec<u8>> = materials.iter().map(|(g, _)| g.to_bytes()).collect();
        let mut run: Vec<&[u8]> = Vec::with_capacity(n + 4);
        run.push(&edge_l);
        run.extend(encoded.iter().map(Vec::as_slice));
        run.push(&edge_u);
        let links: Vec<Digest> = crate::gdigest::link_digests_run(&hasher, &run);

        let mut signatures: Vec<Option<Signature>> = vec![None; n + 2];
        std::thread::scope(|s| {
            for (t, sig_chunk) in signatures.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let links = &links;
                let hasher = &hasher;
                let keypair = &self.keypair;
                s.spawn(move || {
                    for (off, slot) in sig_chunk.iter_mut().enumerate() {
                        *slot = Some(keypair.sign(hasher, &links[start + off]));
                    }
                });
            }
        });

        let entries: Vec<SignedEntry> = materials
            .into_iter()
            .zip(signatures)
            .map(|((g, roots), sig)| SignedEntry {
                g,
                roots,
                signature: sig.unwrap(),
            })
            .collect();

        // Populate the signature B+-tree.
        let mut sig_index = BPlusTree::new(64);
        let mut st = SignedTable {
            table,
            domain,
            config,
            hasher,
            radix,
            entries,
            sig_index: BPlusTree::new(64),
            public_key: self.keypair.public().clone(),
        };
        for pos in 0..st.entries.len() {
            sig_index.insert(st.tree_key_at(pos), st.entries[pos].signature.clone());
        }
        st.sig_index = sig_index;
        Ok(st)
    }

    /// Re-signs the given chain positions in place, updating the B+-tree.
    fn resign(&self, st: &mut SignedTable, positions: &[usize]) {
        for &pos in positions {
            let link = st.link_at(pos);
            let sig = self.keypair.sign(&st.hasher, &link);
            st.entries[pos].signature = sig.clone();
            st.sig_index.insert(st.tree_key_at(pos), sig);
        }
    }

    /// Inserts a record, re-signing the record and its two neighbours
    /// (Section 6.3: like updating a doubly-linked list).
    pub fn insert_record(
        &self,
        st: &mut SignedTable,
        record: Record,
    ) -> Result<UpdateReport, OwnerError> {
        let key = record.key(st.table.schema());
        if !st.domain.contains_key(key) {
            return Err(OwnerError::KeyOutOfDomain { key });
        }
        st.sig_index.stats().reset();
        let schema = st.table.schema().clone();
        let (g, roots) = self.materialize(
            &st.hasher,
            &st.config,
            st.radix.as_ref(),
            &st.domain,
            &schema,
            &record,
        );
        let pos = st.table.insert(record)?;
        let cp = pos + 1;
        // Placeholder signature replaced by resign() below.
        let placeholder = st.entries[0].signature.clone();
        st.entries.insert(
            cp,
            SignedEntry {
                g,
                roots,
                signature: placeholder,
            },
        );
        self.resign(st, &[cp - 1, cp, cp + 1]);
        Ok(UpdateReport {
            signatures_recomputed: 3,
            g_recomputed: 1,
            index_leaves_touched: st.sig_index.stats().leaves_visited(),
            index_nodes_touched: st.sig_index.stats().nodes_visited(),
        })
    }

    /// Deletes `(key, replica)`, re-signing the two now-adjacent
    /// neighbours.
    pub fn delete_record(
        &self,
        st: &mut SignedTable,
        key: i64,
        replica: u32,
    ) -> Result<UpdateReport, OwnerError> {
        let Some(pos) = st.table.position_of(key, replica) else {
            return Err(OwnerError::NoSuchRecord { key, replica });
        };
        st.sig_index.stats().reset();
        st.table.remove_at(pos);
        let cp = pos + 1;
        st.entries.remove(cp);
        st.sig_index.remove((key, replica));
        self.resign(st, &[cp - 1, cp]);
        Ok(UpdateReport {
            signatures_recomputed: 2,
            g_recomputed: 0,
            index_leaves_touched: st.sig_index.stats().leaves_visited(),
            index_nodes_touched: st.sig_index.stats().nodes_visited(),
        })
    }

    /// Replaces the non-key attributes of `(key, replica)`, re-signing the
    /// record and its two neighbours.
    pub fn update_record(
        &self,
        st: &mut SignedTable,
        key: i64,
        replica: u32,
        new_record: Record,
    ) -> Result<UpdateReport, OwnerError> {
        let Some(pos) = st.table.position_of(key, replica) else {
            return Err(OwnerError::NoSuchRecord { key, replica });
        };
        if new_record.key(st.table.schema()) != key {
            // Key changes relocate the record: delete + insert.
            let d = self.delete_record(st, key, replica)?;
            let i = self.insert_record(st, new_record)?;
            return Ok(UpdateReport {
                signatures_recomputed: d.signatures_recomputed + i.signatures_recomputed,
                g_recomputed: d.g_recomputed + i.g_recomputed,
                index_leaves_touched: d.index_leaves_touched + i.index_leaves_touched,
                index_nodes_touched: d.index_nodes_touched + i.index_nodes_touched,
            });
        }
        st.sig_index.stats().reset();
        let schema = st.table.schema().clone();
        let (g, roots) = self.materialize(
            &st.hasher,
            &st.config,
            st.radix.as_ref(),
            &st.domain,
            &schema,
            &new_record,
        );
        st.table.update_in_place(pos, new_record)?;
        let cp = pos + 1;
        st.entries[cp].g = g;
        st.entries[cp].roots = roots;
        self.resign(st, &[cp - 1, cp, cp + 1]);
        Ok(UpdateReport {
            signatures_recomputed: 3,
            g_recomputed: 1,
            index_leaves_touched: st.sig_index.stats().leaves_visited(),
            index_nodes_touched: st.sig_index.stats().nodes_visited(),
        })
    }

    /// Issues the user-facing certificate for a signed table.
    pub fn certificate(&self, st: &SignedTable) -> Certificate {
        Certificate {
            table_name: st.table.name().to_string(),
            schema: st.table.schema().clone(),
            domain: st.domain,
            config: st.config,
            public_key: self.keypair.public().clone(),
        }
    }

    /// Publishes a logical table under several sort orders: one
    /// [`SignedTable`] per listed key attribute, each with its own domain
    /// (the paper's Section 6.3 notes this is analogous to creating one
    /// B+-tree per indexed attribute; its future work discusses
    /// multi-dimensional schemes to avoid it).
    pub fn sign_sort_orders(
        &self,
        table: &Table,
        orders: &[(&str, Domain)],
        config: SchemeConfig,
    ) -> Result<Vec<SignedTable>, OwnerError> {
        let mut out = Vec::with_capacity(orders.len());
        for (attr, domain) in orders {
            let schema = Schema::new(table.schema().columns().to_vec(), attr);
            let records: Vec<Record> = table.rows().iter().map(|r| r.record.clone()).collect();
            let renamed = format!("{}@{attr}", table.name());
            let sorted = Table::from_records(renamed, schema, records)?;
            out.push(self.sign_table(sorted, *domain, config)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{Column, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    pub(crate) fn test_owner() -> &'static Owner {
        static OWNER: OnceLock<Owner> = OnceLock::new();
        OWNER.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x0B11);
            Owner::new(512, &mut rng)
        })
    }

    fn emp_schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Int),
            ],
            "salary",
        )
    }

    fn figure1_table() -> Table {
        let mut t = Table::new("emp", emp_schema());
        for (id, name, sal, dept) in [
            (5i64, "A", 2000i64, 1i64),
            (2, "C", 3500, 2),
            (1, "D", 8010, 1),
            (4, "B", 12100, 3),
            (3, "E", 25000, 2),
        ] {
            t.insert(Record::new(vec![
                Value::Int(id),
                Value::from(name),
                Value::Int(sal),
                Value::Int(dept),
            ]))
            .unwrap();
        }
        t
    }

    fn rec(id: i64, sal: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::from("X"),
            Value::Int(sal),
            Value::Int(1),
        ])
    }

    #[test]
    fn sign_and_audit() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(st.chain_len(), 7);
        assert_eq!(st.key_at(0), 1);
        assert_eq!(st.key_at(6), 99_999);
        assert_eq!(st.key_at(1), 2000);
        assert!(st.audit());
        assert_eq!(st.sig_index().len(), 7);
    }

    #[test]
    fn sign_empty_table() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                Table::new("empty", emp_schema()),
                Domain::new(0, 1_000),
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(st.chain_len(), 2);
        assert!(st.audit());
    }

    #[test]
    fn conceptual_mode_sign() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::conceptual(),
            )
            .unwrap();
        assert!(st.audit());
        assert!(st.entry(1).roots.is_none());
    }

    #[test]
    fn out_of_domain_key_rejected() {
        let owner = test_owner();
        let err = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 10_000),
                SchemeConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, OwnerError::KeyOutOfDomain { key: 12_100 }));
    }

    #[test]
    fn insert_resigns_three() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let report = owner.insert_record(&mut st, rec(9, 5_000)).unwrap();
        assert_eq!(report.signatures_recomputed, 3);
        assert_eq!(report.g_recomputed, 1);
        assert_eq!(st.len(), 6);
        assert!(st.audit(), "chain must remain verifiable after insert");
        // Inserted between 3500 and 8010.
        assert_eq!(st.key_at(3), 5_000);
    }

    #[test]
    fn insert_at_extremes() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        owner.insert_record(&mut st, rec(9, 2)).unwrap(); // smallest legal key
        owner.insert_record(&mut st, rec(10, 99_998)).unwrap(); // largest legal key
        assert!(st.audit());
        assert_eq!(st.key_at(1), 2);
        assert_eq!(st.key_at(st.chain_len() - 2), 99_998);
    }

    #[test]
    fn insert_duplicate_key_gets_replica() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        owner.insert_record(&mut st, rec(9, 3500)).unwrap();
        assert!(st.audit());
        assert_eq!(st.tree_key_at(2), (3500, 0));
        assert_eq!(st.tree_key_at(3), (3500, 1));
    }

    #[test]
    fn delete_resigns_two() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let report = owner.delete_record(&mut st, 8010, 0).unwrap();
        assert_eq!(report.signatures_recomputed, 2);
        assert_eq!(st.len(), 4);
        assert!(st.audit(), "chain must remain verifiable after delete");
        assert!(matches!(
            owner.delete_record(&mut st, 8010, 0),
            Err(OwnerError::NoSuchRecord { .. })
        ));
    }

    #[test]
    fn delete_first_and_last() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        owner.delete_record(&mut st, 2000, 0).unwrap();
        owner.delete_record(&mut st, 25_000, 0).unwrap();
        assert!(st.audit());
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn update_in_place_resigns_three() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let new_rec = Record::new(vec![
            Value::Int(1),
            Value::from("D2"),
            Value::Int(8010),
            Value::Int(7),
        ]);
        let report = owner.update_record(&mut st, 8010, 0, new_rec).unwrap();
        assert_eq!(report.signatures_recomputed, 3);
        assert!(st.audit());
        assert_eq!(st.table().row(2).record.get(1), &Value::from("D2"));
    }

    #[test]
    fn update_with_key_change_relocates() {
        let owner = test_owner();
        let mut st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let report = owner
            .update_record(&mut st, 8010, 0, rec(1, 30_000))
            .unwrap();
        assert_eq!(report.signatures_recomputed, 5); // 2 delete + 3 insert
        assert!(st.audit());
        assert_eq!(st.key_at(st.chain_len() - 2), 30_000);
    }

    #[test]
    fn update_locality_in_index() {
        // Section 6.3: updates should touch very few B+-tree leaves.
        let owner = test_owner();
        let mut t = Table::new("big", emp_schema());
        for i in 0..500i64 {
            t.insert(rec(i, 10 + i * 3)).unwrap();
        }
        let mut st = owner
            .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
            .unwrap();
        let report = owner
            .update_record(&mut st, 10 + 250 * 3, 0, rec(250, 10 + 250 * 3))
            .unwrap();
        // 3 index writes, each descending height-many nodes; leaves should
        // be a small constant, not O(n) or O(log n)·digest-path like MHTs.
        assert!(report.index_leaves_touched <= 6, "{report:?}");
    }

    #[test]
    fn sort_orders_publish() {
        let owner = test_owner();
        let t = figure1_table();
        let signed = owner
            .sign_sort_orders(
                &t,
                &[
                    ("salary", Domain::new(0, 100_000)),
                    ("dept", Domain::new(-10, 100)),
                ],
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(signed.len(), 2);
        assert!(signed.iter().all(SignedTable::audit));
        assert_eq!(signed[1].table().schema().key_name(), "dept");
        // The dept-sorted chain orders by dept: 1,1,2,2,3.
        assert_eq!(signed[1].key_at(1), 1);
        assert_eq!(signed[1].key_at(5), 3);
    }

    #[test]
    fn certificate_carries_scheme() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let cert = owner.certificate(&st);
        assert_eq!(cert.table_name, "emp");
        assert_eq!(cert.domain, *st.domain());
        assert_eq!(&cert.public_key, st.public_key());
    }

    #[test]
    fn dissemination_size_is_signatures_only() {
        let owner = test_owner();
        let st = owner
            .sign_table(
                figure1_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        assert_eq!(st.dissemination_size(), 7 * 64);
    }
}
