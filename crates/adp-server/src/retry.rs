//! Typed retry policy for the self-healing clients: capped exponential
//! backoff with deterministic jitter.
//!
//! The policy is deliberately *typed into* each client rather than being a
//! blanket wrapper: only operations that are safe to repeat get a retry
//! loop. Idempotent reads ([`RemoteClient`](crate::RemoteClient) pings,
//! stats, queries, batches) retry transparently; handshakes that create
//! server-side state (`Subscribe`, `FollowLog`) are re-driven by their
//! owning client ([`RemoteSubscriber`](crate::RemoteSubscriber),
//! [`ResilientFollower`](crate::ResilientFollower)), which knows how to
//! re-establish that state from its own cursor; and nothing ever retries
//! on a *fatal* error — a server-reported error, or an answer that failed
//! verification, means retrying would re-ask a peer that already gave its
//! (wrong) answer. [`RemoteError::is_retryable`](crate::RemoteError)
//! draws that line.
//!
//! Jitter is deterministic (seeded [`Rng64`]) so chaos tests replay
//! byte-identically from a committed seed, yet still decorrelates real
//! fleets: give each client a distinct seed.

use adp_faults::{substream, Rng64};
use std::time::Duration;

/// Retry budget and backoff shape for one client.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries allowed per logical operation (0 = fail fast; the first
    /// attempt is not a retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base: Duration,
    /// Ceiling the exponential never exceeds.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            seed: 0x5EED_F00D,
        }
    }
}

impl RetryPolicy {
    /// No retries: every transport error is final (the pre-robustness
    /// behavior, and the default for the plain constructors).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry number `attempt` (0-based): an exponential
    /// `base * 2^attempt` capped at `max_backoff`, then jittered into
    /// `[d/2, d)` so synchronized clients desynchronize. Deterministic in
    /// `(seed, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_backoff);
        let nanos = capped.as_nanos().min(u64::MAX as u128) as u64;
        if nanos < 2 {
            return capped;
        }
        let mut rng = Rng64::new(substream(self.seed, "backoff", u64::from(attempt)));
        Duration::from_nanos(nanos / 2 + rng.below(nanos / 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            seed: 1,
        };
        // Jitter keeps each delay in [cap/2, cap); the cap itself grows
        // exponentially until max_backoff.
        for attempt in 0..10 {
            let d = p.backoff(attempt);
            let cap = Duration::from_millis(10)
                .saturating_mul(1 << attempt.min(20))
                .min(Duration::from_millis(100));
            assert!(d >= cap / 2 && d < cap, "attempt {attempt}: {d:?}");
        }
        // High attempts stay at the ceiling's band.
        assert!(p.backoff(30) >= Duration::from_millis(50));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(3), p.backoff(3));
        let q = RetryPolicy {
            seed: 99,
            ..RetryPolicy::default()
        };
        assert_ne!(p.backoff(3), q.backoff(3));
    }
}
