//! The owner → publisher dissemination path (Figure 3's "data +
//! signatures" arrow): the publisher reconstructs a serving-ready
//! [`SignedTable`] from the raw table plus the signature list, and the
//! certificate travels to users as bytes.

use adp_core::prelude::*;
use adp_core::wire;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xD155);
        Owner::new(512, &mut rng)
    })
}

fn sample_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("flag", ValueType::Bool),
        ],
        "k",
    );
    let mut t = Table::new("disseminated", schema);
    for i in 0..40i64 {
        t.insert(Record::new(vec![
            Value::Int(i * 3 + 2),
            Value::from(format!("n{i}")),
            Value::Bool(i % 2 == 0),
        ]))
        .unwrap();
    }
    t
}

#[test]
fn publisher_rebuilds_from_parts_and_serves() {
    let o = owner();
    let original = o
        .sign_table(
            sample_table(),
            Domain::new(0, 10_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let cert = o.certificate(&original);

    // What actually travels owner → publisher: data + signatures.
    let signatures: Vec<_> = (0..original.chain_len())
        .map(|i| original.entry(i).signature.clone())
        .collect();
    let sig_bytes = wire::encode_signatures(&signatures);
    let decoded_sigs = wire::decode_signatures(&sig_bytes).unwrap();

    let rebuilt = SignedTable::from_parts(
        sample_table(),
        Domain::new(0, 10_000),
        SchemeConfig::default(),
        decoded_sigs,
        cert.public_key.clone(),
    )
    .unwrap();
    assert!(
        rebuilt.audit(),
        "rebuilt chain must verify against the owner key"
    );

    // The rebuilt publisher serves verifiable answers.
    let query = SelectQuery::range(KeyRange::closed(10, 60)).project(&["name"]);
    let (rows, vo) = Publisher::new(&rebuilt).answer_select(&query).unwrap();
    let report = verify_select(&cert, &query, &rows, &vo).unwrap();
    assert!(report.matched > 0);
}

#[test]
fn from_parts_rejects_wrong_signature_count() {
    let o = owner();
    let original = o
        .sign_table(
            sample_table(),
            Domain::new(0, 10_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let mut signatures: Vec<_> = (0..original.chain_len())
        .map(|i| original.entry(i).signature.clone())
        .collect();
    signatures.pop();
    assert!(SignedTable::from_parts(
        sample_table(),
        Domain::new(0, 10_000),
        SchemeConfig::default(),
        signatures,
        original.public_key().clone(),
    )
    .is_err());
}

#[test]
fn tampered_dissemination_fails_audit() {
    // A publisher receiving data that does not match the signatures can
    // detect it immediately (and must not serve it).
    let o = owner();
    let original = o
        .sign_table(
            sample_table(),
            Domain::new(0, 10_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let signatures: Vec<_> = (0..original.chain_len())
        .map(|i| original.entry(i).signature.clone())
        .collect();
    let mut tampered = sample_table();
    let rec = Record::new(vec![Value::Int(2), Value::from("evil"), Value::Bool(false)]);
    tampered.update_in_place(0, rec).unwrap();
    let rebuilt = SignedTable::from_parts(
        tampered,
        Domain::new(0, 10_000),
        SchemeConfig::default(),
        signatures,
        original.public_key().clone(),
    )
    .unwrap();
    assert!(!rebuilt.audit(), "tampered data must fail the audit");
}

#[test]
fn certificate_roundtrips_through_bytes() {
    let o = owner();
    for config in [
        SchemeConfig::default(),
        SchemeConfig::conceptual(),
        SchemeConfig::with_base(10).digest_len(32).aggregate(false),
    ] {
        let st = o
            .sign_table(sample_table(), Domain::new(-50, 10_000), config)
            .unwrap();
        let cert = o.certificate(&st);
        let bytes = wire::encode_certificate(&cert);
        let back = wire::decode_certificate(&bytes).unwrap();
        assert_eq!(back.table_name, cert.table_name);
        assert_eq!(back.schema, cert.schema);
        assert_eq!(back.domain, cert.domain);
        assert_eq!(back.config, cert.config);
        assert_eq!(back.public_key, cert.public_key);

        // The decoded certificate verifies real answers.
        let query = SelectQuery::range(KeyRange::closed(10, 60));
        let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        verify_select(&back, &query, &rows, &vo).unwrap();
    }
}

#[test]
fn certificate_decoding_rejects_garbage() {
    assert!(wire::decode_certificate(&[]).is_err());
    assert!(wire::decode_certificate(&[0xff; 40]).is_err());
    let o = owner();
    let st = o
        .sign_table(
            sample_table(),
            Domain::new(0, 10_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let bytes = wire::encode_certificate(&o.certificate(&st));
    for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            wire::decode_certificate(&bytes[..cut]).is_err(),
            "cut {cut}"
        );
    }
}
