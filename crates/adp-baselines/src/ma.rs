//! The Ma et al. \[13\] baseline ("Authenticating Query Results From
//! Untrusted Servers", Section 2.3 of the paper): per-tuple Merkle trees
//! over attribute values plus condensed-RSA signature aggregation.
//!
//! Strengths the paper credits it with: projection-friendly VOs (digests
//! replace projected-out attributes) and a single aggregated signature per
//! result. Weakness: **no completeness verification** — an omitted tuple is
//! undetectable, which the comparison bench demonstrates.

use crate::scheme::UpdateCost;
use adp_crypto::{
    root_from_mixed, AggregateSignature, Digest, HashDomain, Hasher, Keypair, MixedLeaf, PublicKey,
    Signature,
};
use adp_relation::{KeyRange, Record, Table};

/// A table published under the Ma et al. scheme.
pub struct MaTable {
    table: Table,
    /// Per-row signature over the row's attribute-tree root.
    signatures: Vec<Signature>,
    public_key: PublicKey,
    hasher: Hasher,
}

/// User-facing certificate.
#[derive(Clone, Debug)]
pub struct MaCertificate {
    /// The owner's verification key.
    pub public_key: PublicKey,
    /// The hash configuration every digest was produced under.
    pub hasher: Hasher,
}

/// Per-row proof: digests for projected-out attributes.
#[derive(Clone, Debug)]
pub struct MaRowProof {
    /// `(column index, leaf digest)` for each attribute the projection
    /// withheld — the verifier re-mixes them with the shipped values.
    pub hidden: Vec<(u32, Digest)>,
}

/// The VO: per-row hidden digests + one aggregated signature.
#[derive(Clone, Debug)]
pub struct MaVO {
    /// One proof per returned row, in result order.
    pub rows: Vec<MaRowProof>,
    /// The condensed-RSA aggregate of the returned rows' signatures
    /// (`None` iff the result is empty).
    pub aggregate: Option<AggregateSignature>,
}

impl MaVO {
    /// Wire size under the shared baseline accounting rule
    /// (`docs/EVALUATION.md` §"VO size accounting"): 4-byte collection
    /// counts, 4-byte column positions, `1 + len` per digest, a 1-byte
    /// presence tag plus `2 + len` for the aggregated signature.
    pub fn wire_size(&self) -> usize {
        4 + self
            .rows
            .iter()
            .map(|r| 4 + r.hidden.iter().map(|(_, d)| 4 + 1 + d.len()).sum::<usize>())
            .sum::<usize>()
            + 1
            + self.aggregate.as_ref().map_or(0, |a| 2 + a.byte_len())
    }
}

fn row_root(hasher: &Hasher, record: &Record) -> Digest {
    let leaves: Vec<Digest> = record
        .values()
        .iter()
        .map(|v| hasher.hash(HashDomain::Leaf, &v.encode()))
        .collect();
    // Hash of all attribute leaf digests (a one-level MHT suffices for the
    // cost profile; Ma et al. use a balanced tree — the constant factors
    // are equivalent for our comparisons).
    hasher.hash_digests(HashDomain::Node, &leaves)
}

impl MaTable {
    /// Owner-side: signs each row's attribute-tree root.
    pub fn publish(keypair: &Keypair, hasher: Hasher, table: Table) -> Self {
        let signatures = table
            .rows()
            .iter()
            .map(|r| keypair.sign(&hasher, &row_root(&hasher, &r.record)))
            .collect();
        MaTable {
            table,
            signatures,
            public_key: keypair.public().clone(),
            hasher,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// User-facing certificate.
    pub fn certificate(&self) -> MaCertificate {
        MaCertificate {
            public_key: self.public_key.clone(),
            hasher: self.hasher,
        }
    }

    /// Bytes the owner ships: one signature per row.
    pub fn dissemination_size(&self) -> usize {
        self.signatures.iter().map(Signature::byte_len).sum()
    }

    /// Publisher-side: answers a range query with projected rows and the
    /// authenticity VO. **Completeness is not provable** — a malicious
    /// publisher can silently drop rows (see the comparison bench).
    pub fn answer_range(&self, range: &KeyRange, projection: &[usize]) -> (Vec<Record>, MaVO) {
        let (start, end) = self.table.key_range_positions(range.lo, range.hi);
        let mut rows = Vec::with_capacity(end - start);
        let mut proofs = Vec::with_capacity(end - start);
        let mut sigs: Vec<&Signature> = Vec::with_capacity(end - start);
        for pos in start..end {
            let record = &self.table.row(pos).record;
            rows.push(record.project(projection));
            let hidden = (0..record.arity())
                .filter(|i| !projection.contains(i))
                .map(|i| {
                    (
                        i as u32,
                        self.hasher.hash(HashDomain::Leaf, &record.get(i).encode()),
                    )
                })
                .collect();
            proofs.push(MaRowProof { hidden });
            sigs.push(&self.signatures[pos]);
        }
        let aggregate = if sigs.is_empty() {
            None
        } else {
            Some(AggregateSignature::combine(&self.public_key, &sigs))
        };
        (
            rows,
            MaVO {
                rows: proofs,
                aggregate,
            },
        )
    }

    /// Owner-side update: replace the non-key attributes of the row at
    /// `pos` and re-sign that row's attribute-tree root.
    ///
    /// This is the scheme's headline update property (and the reason the
    /// paper's Section 6.3 can't beat it on churn): exactly **one**
    /// signature regardless of table size — but the price is that no
    /// completeness statement ties the rows together.
    pub fn update_record(&mut self, keypair: &Keypair, pos: usize, record: Record) -> UpdateCost {
        let digests = record.arity() as u64 + 1; // attribute leaves + root
        self.table
            .update_in_place(pos, record)
            .expect("schema-valid, key-preserving update");
        self.signatures[pos] = keypair.sign(
            &self.hasher,
            &row_root(&self.hasher, &self.table.row(pos).record),
        );
        UpdateCost {
            signatures: 1,
            digests,
        }
    }
}

/// User-side verification: **authenticity only**.
pub fn verify_range(
    cert: &MaCertificate,
    projection: &[usize],
    arity: usize,
    rows: &[Record],
    vo: &MaVO,
) -> Result<(), &'static str> {
    if rows.len() != vo.rows.len() {
        return Err("row/proof count mismatch");
    }
    let mut roots = Vec::with_capacity(rows.len());
    for (row, proof) in rows.iter().zip(&vo.rows) {
        if row.arity() != projection.len() {
            return Err("projection arity mismatch");
        }
        let mut encodings: Vec<Option<Vec<u8>>> = vec![None; arity];
        for (slot, &col) in projection.iter().enumerate() {
            encodings[col] = Some(row.get(slot).encode());
        }
        let mut hidden: Vec<Option<Digest>> = vec![None; arity];
        for (pos, d) in &proof.hidden {
            let pos = *pos as usize;
            if pos >= arity || hidden[pos].is_some() || encodings[pos].is_some() {
                return Err("attribute coverage invalid");
            }
            hidden[pos] = Some(*d);
        }
        let mut leaves = Vec::with_capacity(arity);
        for i in 0..arity {
            match (&encodings[i], hidden[i]) {
                (Some(e), None) => leaves.push(MixedLeaf::Value(e)),
                (None, Some(d)) => leaves.push(MixedLeaf::Digest(d)),
                _ => return Err("attribute coverage invalid"),
            }
        }
        // Flat root (matches `row_root`).
        let leaf_digests: Vec<Digest> = leaves
            .iter()
            .map(|l| match l {
                MixedLeaf::Value(v) => cert.hasher.hash(HashDomain::Leaf, v),
                MixedLeaf::Digest(d) => *d,
            })
            .collect();
        roots.push(cert.hasher.hash_digests(HashDomain::Node, &leaf_digests));
        let _ = root_from_mixed; // balanced-tree variant available if needed
    }
    match &vo.aggregate {
        None if rows.is_empty() => Ok(()),
        None => Err("missing aggregate"),
        Some(agg) => {
            if agg.verify(&cert.hasher, &cert.public_key, &roots) {
                Ok(())
            } else {
                Err("aggregate signature invalid")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{Column, Schema, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keypair() -> &'static Keypair {
        static K: OnceLock<Keypair> = OnceLock::new();
        K.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x3A3A);
            Keypair::generate(512, &mut rng)
        })
    }

    fn table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("a", ValueType::Text),
                Column::new("b", ValueType::Int),
            ],
            "k",
        );
        let mut t = Table::new("t", schema);
        for i in 0..10i64 {
            t.insert(Record::new(vec![
                Value::Int(i * 5),
                Value::from(format!("v{i}")),
                Value::Int(i),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn authenticity_verifies() {
        let ma = MaTable::publish(keypair(), Hasher::default(), table());
        let cert = ma.certificate();
        let range = KeyRange::closed(10, 30);
        let proj = vec![0usize, 1];
        let (rows, vo) = ma.answer_range(&range, &proj);
        assert_eq!(rows.len(), 5);
        verify_range(&cert, &proj, 3, &rows, &vo).unwrap();
    }

    #[test]
    fn tamper_detected() {
        let ma = MaTable::publish(keypair(), Hasher::default(), table());
        let cert = ma.certificate();
        let proj = vec![0usize, 1, 2];
        let (mut rows, vo) = ma.answer_range(&KeyRange::all(), &proj);
        let mut vals = rows[0].values().to_vec();
        vals[1] = Value::from("evil");
        rows[0] = Record::new(vals);
        assert!(verify_range(&cert, &proj, 3, &rows, &vo).is_err());
    }

    #[test]
    fn omission_not_detected() {
        // The crucial limitation: dropping a row AND its proof AND its
        // signature from the aggregate passes verification.
        let ma = MaTable::publish(keypair(), Hasher::default(), table());
        let cert = ma.certificate();
        let proj = vec![0usize, 1, 2];
        let range = KeyRange::closed(10, 30);
        let (full_rows, _) = ma.answer_range(&range, &proj);
        // Malicious publisher: answer a narrower range and present it as
        // the full answer.
        let (rows, vo) = ma.answer_range(&KeyRange::closed(10, 25), &proj);
        assert!(rows.len() < full_rows.len());
        // Verification succeeds despite the omission — completeness cannot
        // be checked with this scheme.
        verify_range(&cert, &proj, 3, &rows, &vo).unwrap();
    }

    #[test]
    fn empty_result() {
        let ma = MaTable::publish(keypair(), Hasher::default(), table());
        let cert = ma.certificate();
        let proj = vec![0usize, 1, 2];
        let (rows, vo) = ma.answer_range(&KeyRange::closed(11, 14), &proj);
        assert!(rows.is_empty());
        verify_range(&cert, &proj, 3, &rows, &vo).unwrap();
    }
}
