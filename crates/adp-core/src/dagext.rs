//! Extension (the paper's Section 7 future work): *"generalizing the
//! proposed scheme for non-relational structures, e.g. directed acyclic
//! graphs."*
//!
//! The relational scheme proves completeness of an *ordered list* by
//! chaining neighbour digests. For a DAG the natural completeness questions
//! are about *adjacency*: "give me all children (or parents) of node `v` —
//! and prove none was withheld." The generalization implemented here:
//!
//! * Each node `v` carries a digest
//!   `g(v) = h(id | payload-digest | MHT(children-ids) | MHT(parent-ids))`,
//!   committing to the **exact, complete adjacency lists** (with their
//!   cardinalities) rather than to a linear order.
//! * The owner signs every `g(v)` (aggregatable, same condensed-RSA as the
//!   relational scheme).
//! * A neighbourhood query returns the adjacent node ids plus the signature
//!   of `v`; the verifier rebuilds both adjacency-MHT roots from the
//!   returned lists, so omitting or injecting an edge breaks `g(v)`.
//! * Reachability queries compose: a verified path `v → … → w` is a chain
//!   of verified child-list memberships; a verified *frontier* (BFS layer)
//!   is the union of verified child lists, giving complete multi-hop
//!   expansions.
//!
//! This mirrors the relational design exactly: contiguity (the signature
//! binds neighbours) becomes adjacency, and the per-record attribute MHT
//! becomes the payload digest.

use adp_crypto::{AggregateSignature, Digest, HashDomain, Hasher, Keypair, PublicKey, Signature};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A node identifier.
pub type NodeId = u64;

/// A DAG with byte payloads on nodes.
#[derive(Clone, Debug, Default)]
pub struct Dag {
    /// node → payload
    nodes: BTreeMap<NodeId, Vec<u8>>,
    /// node → sorted children
    children: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// node → sorted parents
    parents: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

/// Errors constructing or querying DAGs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    DuplicateNode(NodeId),
    UnknownNode(NodeId),
    CycleDetected,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::DuplicateNode(id) => write!(f, "duplicate node {id}"),
            DagError::UnknownNode(id) => write!(f, "unknown node {id}"),
            DagError::CycleDetected => write!(f, "edge would create a cycle"),
        }
    }
}
impl std::error::Error for DagError {}

impl Dag {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node.
    pub fn add_node(&mut self, id: NodeId, payload: Vec<u8>) -> Result<(), DagError> {
        if self.nodes.contains_key(&id) {
            return Err(DagError::DuplicateNode(id));
        }
        self.nodes.insert(id, payload);
        self.children.entry(id).or_default();
        self.parents.entry(id).or_default();
        Ok(())
    }

    /// Adds an edge `from → to`, rejecting cycles.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), DagError> {
        if !self.nodes.contains_key(&from) {
            return Err(DagError::UnknownNode(from));
        }
        if !self.nodes.contains_key(&to) {
            return Err(DagError::UnknownNode(to));
        }
        if from == to || self.reaches(to, from) {
            return Err(DagError::CycleDetected);
        }
        self.children.get_mut(&from).unwrap().insert(to);
        self.parents.get_mut(&to).unwrap().insert(from);
        Ok(())
    }

    /// DFS reachability (owner-side validation only).
    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(v) = stack.pop() {
            if v == to {
                return true;
            }
            if seen.insert(v) {
                stack.extend(self.children.get(&v).into_iter().flatten().copied());
            }
        }
        false
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children of a node.
    pub fn children_of(&self, id: NodeId) -> Option<Vec<NodeId>> {
        self.children.get(&id).map(|s| s.iter().copied().collect())
    }

    /// Parents of a node.
    pub fn parents_of(&self, id: NodeId) -> Option<Vec<NodeId>> {
        self.parents.get(&id).map(|s| s.iter().copied().collect())
    }

    /// Payload of a node.
    pub fn payload(&self, id: NodeId) -> Option<&[u8]> {
        self.nodes.get(&id).map(Vec::as_slice)
    }
}

/// Digest over an adjacency list: cardinality + each id as a leaf digest,
/// hashed in sorted order. (A flat hash suffices — the verifier always
/// holds the complete list; Merkle paths are unnecessary because partial
/// adjacency disclosure is not part of the query model.)
fn adjacency_digest(hasher: &Hasher, ids: &BTreeSet<NodeId>) -> Digest {
    let mut parts: Vec<Vec<u8>> = Vec::with_capacity(ids.len() + 1);
    parts.push((ids.len() as u64).to_le_bytes().to_vec());
    for id in ids {
        parts.push(id.to_le_bytes().to_vec());
    }
    let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
    hasher.hash_parts(HashDomain::Node, &refs)
}

/// `g(v)` for the DAG scheme.
fn node_digest(
    hasher: &Hasher,
    id: NodeId,
    payload: &[u8],
    children: &BTreeSet<NodeId>,
    parents: &BTreeSet<NodeId>,
) -> Digest {
    let payload_d = hasher.hash(HashDomain::Leaf, payload);
    let child_d = adjacency_digest(hasher, children);
    let parent_d = adjacency_digest(hasher, parents);
    hasher.hash_parts(
        HashDomain::Link,
        &[
            &id.to_le_bytes(),
            payload_d.as_bytes(),
            child_d.as_bytes(),
            parent_d.as_bytes(),
        ],
    )
}

/// A DAG signed for publishing.
pub struct SignedDag {
    dag: Dag,
    signatures: BTreeMap<NodeId, Signature>,
    public_key: PublicKey,
    hasher: Hasher,
}

/// The user-facing certificate for a signed DAG.
#[derive(Clone, Debug)]
pub struct DagCertificate {
    pub public_key: PublicKey,
    pub hasher: Hasher,
}

/// A verified neighbourhood answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighbourhoodProof {
    /// The queried node's payload.
    pub payload: Vec<u8>,
    /// Complete child list.
    pub children: Vec<NodeId>,
    /// Complete parent list.
    pub parents: Vec<NodeId>,
    /// `sig(v)`.
    pub signature: Signature,
}

/// Verification failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagVerifyError {
    SignatureInvalid,
    AdjacencyNotSorted,
    FrontierMismatch,
    SignatureCountMismatch,
}

impl fmt::Display for DagVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DagVerifyError::SignatureInvalid => "node signature invalid",
            DagVerifyError::AdjacencyNotSorted => "adjacency list not sorted/deduplicated",
            DagVerifyError::FrontierMismatch => "frontier does not equal the union of child lists",
            DagVerifyError::SignatureCountMismatch => "signature count mismatch",
        };
        f.write_str(s)
    }
}
impl std::error::Error for DagVerifyError {}

impl SignedDag {
    /// Owner-side: signs every node's `g(v)`.
    pub fn publish(keypair: &Keypair, hasher: Hasher, dag: Dag) -> Self {
        let mut signatures = BTreeMap::new();
        for (id, payload) in &dag.nodes {
            let g = node_digest(&hasher, *id, payload, &dag.children[id], &dag.parents[id]);
            signatures.insert(*id, keypair.sign(&hasher, &g));
        }
        SignedDag {
            dag,
            signatures,
            public_key: keypair.public().clone(),
            hasher,
        }
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// User-facing certificate.
    pub fn certificate(&self) -> DagCertificate {
        DagCertificate {
            public_key: self.public_key.clone(),
            hasher: self.hasher,
        }
    }

    /// Publisher-side: answers "neighbourhood of `v`".
    pub fn answer_neighbourhood(&self, id: NodeId) -> Result<NeighbourhoodProof, DagError> {
        let payload = self
            .dag
            .payload(id)
            .ok_or(DagError::UnknownNode(id))?
            .to_vec();
        Ok(NeighbourhoodProof {
            payload,
            children: self.dag.children_of(id).unwrap(),
            parents: self.dag.parents_of(id).unwrap(),
            signature: self.signatures[&id].clone(),
        })
    }

    /// Publisher-side: answers a BFS frontier expansion from `roots`
    /// (`depth` hops), returning per-node proofs for every expanded node
    /// and an aggregate signature.
    pub fn answer_frontier(
        &self,
        roots: &[NodeId],
        depth: usize,
    ) -> Result<(Vec<(NodeId, NeighbourhoodProof)>, AggregateSignature), DagError> {
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut layer: Vec<NodeId> = roots.to_vec();
        let mut out = Vec::new();
        for _ in 0..=depth {
            let mut next = Vec::new();
            for id in layer {
                if !seen.insert(id) {
                    continue;
                }
                let proof = self.answer_neighbourhood(id)?;
                next.extend(proof.children.iter().copied());
                out.push((id, proof));
            }
            layer = next;
        }
        let sigs: Vec<&Signature> = out.iter().map(|(_, p)| &p.signature).collect();
        let agg = AggregateSignature::combine(&self.public_key, &sigs);
        Ok((out, agg))
    }
}

/// User-side: verifies a single neighbourhood proof.
pub fn verify_neighbourhood(
    cert: &DagCertificate,
    id: NodeId,
    proof: &NeighbourhoodProof,
) -> Result<(), DagVerifyError> {
    let g = rebuild_digest(cert, id, proof)?;
    if cert.public_key.verify(&cert.hasher, &g, &proof.signature) {
        Ok(())
    } else {
        Err(DagVerifyError::SignatureInvalid)
    }
}

fn rebuild_digest(
    cert: &DagCertificate,
    id: NodeId,
    proof: &NeighbourhoodProof,
) -> Result<Digest, DagVerifyError> {
    let children = sorted_set(&proof.children)?;
    let parents = sorted_set(&proof.parents)?;
    Ok(node_digest(
        &cert.hasher,
        id,
        &proof.payload,
        &children,
        &parents,
    ))
}

fn sorted_set(ids: &[NodeId]) -> Result<BTreeSet<NodeId>, DagVerifyError> {
    let set: BTreeSet<NodeId> = ids.iter().copied().collect();
    if set.len() != ids.len() || !ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(DagVerifyError::AdjacencyNotSorted);
    }
    Ok(set)
}

/// User-side: verifies a frontier expansion — every node's adjacency proof
/// plus the BFS closure property (the expansion visited exactly the nodes
/// reachable within `depth` hops of `roots`).
pub fn verify_frontier(
    cert: &DagCertificate,
    roots: &[NodeId],
    depth: usize,
    proofs: &[(NodeId, NeighbourhoodProof)],
    aggregate: &AggregateSignature,
) -> Result<(), DagVerifyError> {
    // 1. Per-node digests + the aggregate.
    let mut digests = Vec::with_capacity(proofs.len());
    let mut by_id: BTreeMap<NodeId, &NeighbourhoodProof> = BTreeMap::new();
    for (id, p) in proofs {
        digests.push(rebuild_digest(cert, *id, p)?);
        by_id.insert(*id, p);
    }
    if aggregate.count() != digests.len() {
        return Err(DagVerifyError::SignatureCountMismatch);
    }
    if !aggregate.verify(&cert.hasher, &cert.public_key, &digests) {
        return Err(DagVerifyError::SignatureInvalid);
    }
    // 2. Closure: recompute the BFS from the verified child lists and
    //    demand the proof set matches exactly.
    let mut expected: BTreeSet<NodeId> = BTreeSet::new();
    let mut layer: Vec<NodeId> = roots.to_vec();
    for _ in 0..=depth {
        let mut next = Vec::new();
        for id in layer {
            if !expected.insert(id) {
                continue;
            }
            let p = by_id.get(&id).ok_or(DagVerifyError::FrontierMismatch)?;
            next.extend(p.children.iter().copied());
        }
        layer = next;
    }
    let got: BTreeSet<NodeId> = by_id.keys().copied().collect();
    if got != expected {
        return Err(DagVerifyError::FrontierMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keypair() -> &'static Keypair {
        static K: OnceLock<Keypair> = OnceLock::new();
        K.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0xDA6);
            Keypair::generate(512, &mut rng)
        })
    }

    /// A small software-dependency-style DAG:
    ///   1 → 2 → 4
    ///   1 → 3 → 4 → 5
    fn diamond() -> Dag {
        let mut d = Dag::new();
        for id in 1..=5u64 {
            d.add_node(id, format!("pkg-{id}").into_bytes()).unwrap();
        }
        for (a, b) in [(1u64, 2u64), (1, 3), (2, 4), (3, 4), (4, 5)] {
            d.add_edge(a, b).unwrap();
        }
        d
    }

    #[test]
    fn construction_rejects_cycles_and_duplicates() {
        let mut d = diamond();
        assert_eq!(d.add_node(3, vec![]), Err(DagError::DuplicateNode(3)));
        assert_eq!(d.add_edge(5, 1), Err(DagError::CycleDetected));
        assert_eq!(d.add_edge(4, 4), Err(DagError::CycleDetected));
        assert_eq!(d.add_edge(9, 1), Err(DagError::UnknownNode(9)));
    }

    #[test]
    fn neighbourhood_verifies() {
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        for id in 1..=5u64 {
            let proof = sd.answer_neighbourhood(id).unwrap();
            verify_neighbourhood(&cert, id, &proof).unwrap();
        }
        let p4 = sd.answer_neighbourhood(4).unwrap();
        assert_eq!(p4.children, vec![5]);
        assert_eq!(p4.parents, vec![2, 3]);
    }

    #[test]
    fn omitted_edge_detected() {
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        let mut proof = sd.answer_neighbourhood(4).unwrap();
        proof.parents.retain(|&p| p != 3); // hide an incoming edge
        assert_eq!(
            verify_neighbourhood(&cert, 4, &proof),
            Err(DagVerifyError::SignatureInvalid)
        );
        let mut proof = sd.answer_neighbourhood(1).unwrap();
        proof.children.pop(); // hide a child
        assert!(verify_neighbourhood(&cert, 1, &proof).is_err());
    }

    #[test]
    fn injected_edge_detected() {
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        let mut proof = sd.answer_neighbourhood(2).unwrap();
        proof.children.push(5); // claim a fabricated edge 2 → 5
        assert!(verify_neighbourhood(&cert, 2, &proof).is_err());
    }

    #[test]
    fn tampered_payload_detected() {
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        let mut proof = sd.answer_neighbourhood(3).unwrap();
        proof.payload = b"pkg-3-evil".to_vec();
        assert_eq!(
            verify_neighbourhood(&cert, 3, &proof),
            Err(DagVerifyError::SignatureInvalid)
        );
    }

    #[test]
    fn unsorted_adjacency_rejected() {
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        let mut proof = sd.answer_neighbourhood(4).unwrap();
        proof.parents.reverse();
        assert_eq!(
            verify_neighbourhood(&cert, 4, &proof),
            Err(DagVerifyError::AdjacencyNotSorted)
        );
    }

    #[test]
    fn frontier_expansion_verifies() {
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        let (proofs, agg) = sd.answer_frontier(&[1], 2).unwrap();
        // Depth 2 from node 1: {1, 2, 3, 4}.
        let ids: BTreeSet<NodeId> = proofs.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, BTreeSet::from([1, 2, 3, 4]));
        verify_frontier(&cert, &[1], 2, &proofs, &agg).unwrap();
    }

    #[test]
    fn frontier_omission_detected() {
        // Dropping node 3 (and its proof) from the frontier must fail: node
        // 1's verified child list names 3, so the closure check notices.
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        let (mut proofs, _) = sd.answer_frontier(&[1], 2).unwrap();
        proofs.retain(|(id, _)| *id != 3);
        let sigs: Vec<&Signature> = proofs.iter().map(|(_, p)| &p.signature).collect();
        let agg = AggregateSignature::combine(&cert.public_key, &sigs);
        assert_eq!(
            verify_frontier(&cert, &[1], 2, &proofs, &agg),
            Err(DagVerifyError::FrontierMismatch)
        );
    }

    #[test]
    fn frontier_depth_zero_is_roots_only() {
        let sd = SignedDag::publish(keypair(), Hasher::default(), diamond());
        let cert = sd.certificate();
        let (proofs, agg) = sd.answer_frontier(&[2, 3], 0).unwrap();
        assert_eq!(proofs.len(), 2);
        verify_frontier(&cert, &[2, 3], 0, &proofs, &agg).unwrap();
    }

    #[test]
    fn larger_random_dag_roundtrip() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(0xD4C);
        let mut d = Dag::new();
        for id in 0..120u64 {
            d.add_node(id, vec![id as u8; 8]).unwrap();
        }
        // Edges only forward (guaranteed acyclic).
        for id in 0..120u64 {
            for _ in 0..rng.gen_range(0..4) {
                let to = rng.gen_range(id + 1..=120.min(id + 20)).min(119);
                if to > id {
                    let _ = d.add_edge(id, to);
                }
            }
        }
        let sd = SignedDag::publish(keypair(), Hasher::default(), d);
        let cert = sd.certificate();
        let (proofs, agg) = sd.answer_frontier(&[0, 1, 2], 3).unwrap();
        verify_frontier(&cert, &[0, 1, 2], 3, &proofs, &agg).unwrap();
    }
}
