//! Threat-model tests: every cheating strategy of Section 3.2 (and several
//! beyond) must be rejected by the verifier, in every scheme mode.

mod common;

use adp_core::prelude::*;
use adp_core::publisher::malicious::{tamper, Attack};
use adp_core::vo::{EntryProof, PrevG, QueryVO};
use adp_relation::{CompareOp, KeyRange, Predicate, SelectQuery};
use common::staff_table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA77AC);
        Owner::new(512, &mut rng)
    })
}

fn setup(config: SchemeConfig) -> (SignedTable, Certificate) {
    let st = owner()
        .sign_table(staff_table(), Domain::new(0, 100_000), config)
        .unwrap();
    let cert = owner().certificate(&st);
    (st, cert)
}

/// Runs `attack` against an honest answer and asserts rejection.
fn assert_attack_caught(config: SchemeConfig, query: SelectQuery, attack: Attack) {
    let (st, cert) = setup(config);
    let publisher = Publisher::new(&st);
    let (result, vo) = publisher.answer_select(&query).unwrap();
    // Sanity: the honest answer verifies.
    verify_select(&cert, &query, &result, &vo)
        .unwrap_or_else(|e| panic!("honest answer must verify before {attack:?}: {e}"));
    let Some((bad_result, bad_vo)) = tamper(&publisher, &query, &result, &vo, attack) else {
        panic!("attack {attack:?} not applicable to this query");
    };
    let verdict = verify_select(&cert, &query, &bad_result, &bad_vo);
    assert!(
        verdict.is_err(),
        "attack {attack:?} must be detected, got {verdict:?}"
    );
}

fn wide_query() -> SelectQuery {
    SelectQuery::range(KeyRange::closed(2_000, 9_000))
}

#[test]
fn case4_omit_interior_detected() {
    assert_attack_caught(SchemeConfig::default(), wide_query(), Attack::OmitInterior);
}

#[test]
fn case3_truncate_tail_detected() {
    assert_attack_caught(SchemeConfig::default(), wide_query(), Attack::TruncateTail);
}

#[test]
fn case2_fake_empty_detected() {
    assert_attack_caught(SchemeConfig::default(), wide_query(), Attack::FakeEmpty);
}

#[test]
fn case5_inject_spurious_detected() {
    assert_attack_caught(
        SchemeConfig::default(),
        wide_query(),
        Attack::InjectSpurious,
    );
}

#[test]
fn tamper_value_detected() {
    assert_attack_caught(SchemeConfig::default(), wide_query(), Attack::TamperValue);
}

#[test]
fn swap_values_detected() {
    // The Introduction's swapped-names forgery.
    assert_attack_caught(SchemeConfig::default(), wide_query(), Attack::SwapValues);
}

#[test]
fn case1_shift_left_boundary_detected() {
    assert_attack_caught(
        SchemeConfig::default(),
        wide_query(),
        Attack::ShiftLeftBoundary,
    );
}

#[test]
fn mislabel_filtered_detected() {
    let query = SelectQuery::range(KeyRange::closed(2_000, 9_000)).filter(Predicate::new(
        "dept",
        CompareOp::Eq,
        1i64,
    ));
    assert_attack_caught(SchemeConfig::default(), query, Attack::MislabelFiltered);
}

#[test]
fn fake_duplicate_detected() {
    let query = SelectQuery::range(KeyRange::closed(2_000, 9_000)).distinct();
    assert_attack_caught(SchemeConfig::default(), query, Attack::FakeDuplicate);
}

#[test]
fn attacks_detected_in_conceptual_mode() {
    for attack in [
        Attack::OmitInterior,
        Attack::TruncateTail,
        Attack::FakeEmpty,
        Attack::TamperValue,
        Attack::ShiftLeftBoundary,
    ] {
        assert_attack_caught(SchemeConfig::conceptual(), wide_query(), attack);
    }
}

#[test]
fn attacks_detected_across_bases() {
    for base in [3u32, 10] {
        for attack in [
            Attack::OmitInterior,
            Attack::TruncateTail,
            Attack::ShiftLeftBoundary,
        ] {
            assert_attack_caught(SchemeConfig::with_base(base), wide_query(), attack);
        }
    }
}

#[test]
fn replayed_vo_for_different_query_rejected() {
    // A VO proving [2000, 9000] must not satisfy a verifier checking
    // [2000, 9500]: the right boundary evidence lands on the wrong chain
    // offset.
    let (st, cert) = setup(SchemeConfig::default());
    let q1 = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    let q2 = SelectQuery::range(KeyRange::closed(2_000, 9_500));
    let (r1, vo1) = Publisher::new(&st).answer_select(&q1).unwrap();
    assert!(verify_select(&cert, &q1, &r1, &vo1).is_ok());
    assert!(verify_select(&cert, &q2, &r1, &vo1).is_err());
}

#[test]
fn narrowed_result_for_wider_query_rejected() {
    // Publisher answers the narrow query honestly but the user asked the
    // wide one — must fail (this is exactly the HR-executive-vs-manager
    // access-control distinction: same data, different proofs).
    let (st, cert) = setup(SchemeConfig::default());
    let narrow = SelectQuery::range(KeyRange::closed(3_000, 6_000));
    let wide = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    let (rn, von) = Publisher::new(&st).answer_select(&narrow).unwrap();
    assert!(verify_select(&cert, &narrow, &rn, &von).is_ok());
    assert!(verify_select(&cert, &wide, &rn, &von).is_err());
}

#[test]
fn cross_table_replay_rejected() {
    // A valid (result, VO) from one signed table must not verify against a
    // different owner key.
    let (st, _) = setup(SchemeConfig::default());
    let query = wide_query();
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let other_owner = Owner::new(512, &mut rng);
    let other_st = other_owner
        .sign_table(
            staff_table(),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let other_cert = other_owner.certificate(&other_st);
    assert_eq!(
        verify_select(&other_cert, &query, &result, &vo),
        Err(VerifyError::SignatureInvalid)
    );
}

#[test]
fn result_records_out_of_order_rejected() {
    let (st, cert) = setup(SchemeConfig::default());
    let query = wide_query();
    let (mut result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    assert!(result.len() >= 2);
    result.swap(0, 1);
    assert!(verify_select(&cert, &query, &result, &vo).is_err());
}

#[test]
fn dropping_signatures_rejected() {
    let (st, cert) = setup(SchemeConfig::default());
    let query = wide_query();
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    let QueryVO::Range(mut rv) = vo else {
        panic!("expected range VO")
    };
    // Shrink the aggregate's claimed count.
    if let adp_core::vo::SignatureProof::Aggregated(agg) = &rv.signatures {
        let bytes = agg.to_bytes();
        rv.signatures = adp_core::vo::SignatureProof::Aggregated(
            adp_crypto::AggregateSignature::from_bytes(&bytes, agg.count() - 1),
        );
    }
    let verdict = verify_select(&cert, &query, &result, &QueryVO::Range(rv));
    assert!(matches!(
        verdict,
        Err(VerifyError::SignatureCountMismatch { .. }) | Err(VerifyError::SignatureInvalid)
    ));
}

#[test]
fn forged_empty_proof_with_garbage_prev_rejected() {
    // Even full control over the opaque prev-g bytes cannot make a
    // non-adjacent pair verify.
    let (st, cert) = setup(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::closed(4_100, 4_400)); // truly empty (salaries step by 500)
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    assert!(verify_select(&cert, &query, &result, &vo).is_ok());
    let QueryVO::Empty(mut ep) = vo else {
        panic!("expected empty VO")
    };
    ep.prev = PrevG::Opaque(vec![0xAB; 48]);
    assert_eq!(
        verify_select(&cert, &query, &result, &QueryVO::Empty(ep)),
        Err(VerifyError::SignatureInvalid)
    );
}

#[test]
fn filtered_entry_without_failing_value_rejected() {
    // Take an honest multipoint VO and strip the disclosed failing value
    // from a filtered entry.
    let (st, cert) = setup(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::closed(2_000, 9_000)).filter(Predicate::new(
        "dept",
        CompareOp::Eq,
        1i64,
    ));
    let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    let QueryVO::Range(mut rv) = vo else { panic!() };
    let mut found = false;
    for e in rv.entries.iter_mut() {
        if let EntryProof::Filtered { attrs, .. } = e {
            attrs.disclosed.clear();
            found = true;
            break;
        }
    }
    assert!(found, "query should have produced a filtered entry");
    let verdict = verify_select(&cert, &query, &result, &QueryVO::Range(rv));
    assert!(matches!(
        verdict,
        Err(VerifyError::FilteredNotProven { .. })
    ));
}

#[test]
fn wrong_digest_length_vo_rejected() {
    // A VO built under a different digest length cannot verify.
    let (st16, cert16) = setup(SchemeConfig::default());
    let st32 = owner()
        .sign_table(
            staff_table(),
            Domain::new(0, 100_000),
            SchemeConfig::default().digest_len(32),
        )
        .unwrap();
    let query = wide_query();
    let (result32, vo32) = Publisher::new(&st32).answer_select(&query).unwrap();
    assert!(verify_select(&cert16, &query, &result32, &vo32).is_err());
    let _ = st16;
}

#[test]
fn precision_out_of_range_record_rejected() {
    // Publisher appends a legitimate record that is outside the range
    // (violating precision even though the record is authentic).
    let (st, cert) = setup(SchemeConfig::default());
    let query = SelectQuery::range(KeyRange::closed(2_000, 6_000));
    let (mut result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
    // Add the record with salary 9500 (authentic but out of range).
    result.push(st.table().rows().last().unwrap().record.clone());
    let verdict = verify_select(&cert, &query, &result, &vo);
    assert!(verdict.is_err());
}
