//! Lifecycle of a verified subscription (protocol v5, docs/PROTOCOL.md
//! §10): register → baseline verifies → owner batch lands → an
//! incremental `DeltaVo` arrives and verifies without refetching →
//! unsubscribe acks and the registry entry dies. Plus the unhappy paths:
//! malformed registrations are typed errors, a slow subscriber is
//! backpressured (delivered late, in order) rather than dropped, a
//! quiet subscriber is reaped by the idle timeout with its registry
//! entry cleaned up, and a delta too large to ship terminates the
//! subscription with a typed `ResyncRequired` push (§11) that a
//! self-healing subscriber honors with a fresh verified baseline — all
//! observable through `StatsSnapshot`.

use adp_core::prelude::*;
use adp_relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use adp_server::protocol::{encode_frame, read_frame, ErrorCode, Frame};
use adp_server::{RemoteError, RemoteSubscriber, RetryPolicy, Server, ServerConfig, ServerHandle};
use adp_store::Store;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adp-sub-life-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
        ],
        "salary",
    )
}

fn rec(id: i64, salary: i64) -> Record {
    Record::new(vec![
        Value::Int(id),
        Value::from(format!("e{id}")),
        Value::Int(salary),
    ])
}

/// Owner + store-backed server: 20 rows, salaries 1000..=10_500 step 500.
struct Fixture {
    owner: Owner,
    owner_st: SignedTable,
    cert: Certificate,
    handle: ServerHandle,
    dir: PathBuf,
}

fn fixture(name: &str, config: ServerConfig) -> Fixture {
    let mut rng = StdRng::seed_from_u64(0x5BB5);
    let owner = Owner::new(512, &mut rng);
    let mut t = Table::new("emp", schema());
    for i in 0..20i64 {
        t.insert(rec(i, 1_000 + i * 500)).unwrap();
    }
    let signed = owner
        .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    let cert = owner.certificate(&signed);
    let owner_st = signed.clone();
    let dir = workdir(name);
    Store::create(&dir, signed).unwrap();
    let mut server = Server::new(config);
    server.open_store(0, &dir).unwrap();
    let handle = server.serve("127.0.0.1:0").unwrap();
    Fixture {
        owner,
        owner_st,
        cert,
        handle,
        dir,
    }
}

impl Fixture {
    /// Signs and ships one owner batch through the live server.
    fn update(&mut self, ops: Vec<Mutation>) -> u64 {
        let report = self.owner.apply_batch(&mut self.owner_st, ops).unwrap();
        self.handle
            .apply_update(0, &report.ops, &report.resigned)
            .expect("owner batch applies")
    }
}

fn wait_for(handle: &ServerHandle, pred: impl Fn(&adp_server::StatsSnapshot) -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if pred(&handle.stats()) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// The happy path: baseline verifies at registration, an in-range batch
/// pushes exactly one incremental delta (verified, no refetch), an
/// out-of-range batch pushes nothing, and unsubscribing acks, drops the
/// registry entry, and stops all pushes.
#[test]
fn subscribe_ingest_delta_unsubscribe() {
    let mut fx = fixture("happy", ServerConfig::default());
    let mut sub = RemoteSubscriber::subscribe(
        fx.handle.addr(),
        fx.cert.clone(),
        0,
        7,
        KeyRange::closed(1_000, 5_000),
    )
    .unwrap();
    // Baseline: salaries 1000, 1500, ..., 5000.
    assert_eq!(sub.rows().count(), 9);
    assert_eq!(sub.deltas_applied(), 1);
    let baseline_epoch = sub.epoch();
    let baseline_sigs = sub.stats().signatures_verified;
    assert!(wait_for(&fx.handle, |s| s.subscriptions == 1));
    assert_eq!(fx.handle.stats().deltas_pushed, 1);

    // An in-range batch: one pushed delta, applied incrementally.
    fx.update(vec![
        Mutation::Insert(rec(100, 2_250)),
        Mutation::Delete {
            key: 3_000,
            replica: 0,
        },
    ]);
    let epoch = sub
        .poll_delta(Duration::from_secs(5))
        .unwrap()
        .expect("in-range batch must push a delta");
    assert!(epoch > baseline_epoch);
    assert_eq!(sub.rows().count(), 9); // +1 insert, -1 delete
    assert!(sub.keys().contains(&2_250));
    assert!(!sub.keys().contains(&3_000));
    assert_eq!(sub.deltas_applied(), 2);
    // The delta was verified (more signatures checked), and it was
    // incremental: far fewer signatures than re-verifying the whole
    // 9-row baseline again.
    let delta_sigs = sub.stats().signatures_verified - baseline_sigs;
    assert!(delta_sigs > 0);
    assert!(
        delta_sigs < baseline_sigs,
        "delta re-verified {delta_sigs} sigs vs {baseline_sigs} for the baseline — not incremental"
    );

    // A batch entirely outside the subscribed range pushes nothing.
    fx.update(vec![Mutation::Insert(rec(101, 50_000))]);
    assert_eq!(sub.poll_delta(Duration::from_millis(400)).unwrap(), None);
    assert_eq!(sub.deltas_applied(), 2);

    // Unsubscribe acks, the registry entry dies, and later in-range
    // batches push nothing.
    sub.unsubscribe().unwrap();
    assert!(wait_for(&fx.handle, |s| s.subscriptions == 0));
    let pushed_before = fx.handle.stats().deltas_pushed;
    fx.update(vec![Mutation::Insert(rec(102, 1_250))]);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        fx.handle.stats().deltas_pushed,
        pushed_before,
        "no deltas may be pushed after unsubscribe"
    );

    fx.handle.shutdown();
    let _ = fs::remove_dir_all(&fx.dir);
}

/// Malformed registrations are typed protocol errors, not hangs: a
/// non-pure-range query, an unknown table, a duplicate sub id on the
/// same connection, and an unsubscribe for an id that was never
/// registered.
#[test]
fn malformed_subscriptions_rejected() {
    let fx = fixture("malformed", ServerConfig::default());
    let mut stream = TcpStream::connect(fx.handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let expect_error =
        |stream: &mut TcpStream, want: ErrorCode, why: &str| match read_frame(stream).unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, want, "{why}"),
            other => panic!("{why}: expected Error frame, got {other:?}"),
        };
    use std::io::Write;

    // Filters make the subscription non-incremental; refused up front.
    let filtered = SelectQuery::range(KeyRange::closed(1_000, 5_000)).filter(Predicate::new(
        "id",
        CompareOp::Eq,
        1i64,
    ));
    stream
        .write_all(&encode_frame(&Frame::Subscribe {
            sub_id: 1,
            table_id: 0,
            query: filtered,
        }))
        .unwrap();
    expect_error(&mut stream, ErrorCode::BadQuery, "filtered subscription");

    // Unknown table.
    stream
        .write_all(&encode_frame(&Frame::Subscribe {
            sub_id: 1,
            table_id: 9,
            query: SelectQuery::range(KeyRange::closed(1_000, 5_000)),
        }))
        .unwrap();
    expect_error(&mut stream, ErrorCode::UnknownTable, "unknown table");

    // A good registration answers with the baseline delta...
    stream
        .write_all(&encode_frame(&Frame::Subscribe {
            sub_id: 1,
            table_id: 0,
            query: SelectQuery::range(KeyRange::closed(1_000, 5_000)),
        }))
        .unwrap();
    match read_frame(&mut stream).unwrap() {
        Frame::DeltaVo { sub_id, pieces, .. } => {
            assert_eq!(sub_id, 1);
            assert_eq!(pieces.len(), 1);
        }
        other => panic!("expected baseline DeltaVo, got {other:?}"),
    }
    // ... and re-registering the same id on the same connection is
    // refused without disturbing the live subscription.
    stream
        .write_all(&encode_frame(&Frame::Subscribe {
            sub_id: 1,
            table_id: 0,
            query: SelectQuery::range(KeyRange::closed(1_000, 2_000)),
        }))
        .unwrap();
    expect_error(&mut stream, ErrorCode::BadQuery, "duplicate sub id");
    assert!(wait_for(&fx.handle, |s| s.subscriptions == 1));

    // Unsubscribing an id that was never registered is a typed error.
    stream
        .write_all(&encode_frame(&Frame::Unsubscribe { sub_id: 42 }))
        .unwrap();
    expect_error(&mut stream, ErrorCode::BadQuery, "unknown unsubscribe");

    // The real one still acks with an empty DeltaVo.
    stream
        .write_all(&encode_frame(&Frame::Unsubscribe { sub_id: 1 }))
        .unwrap();
    match read_frame(&mut stream).unwrap() {
        Frame::DeltaVo { sub_id, pieces, .. } => {
            assert_eq!(sub_id, 1);
            assert!(pieces.is_empty(), "ack must carry no pieces");
        }
        other => panic!("expected unsubscribe ack, got {other:?}"),
    }
    assert!(wait_for(&fx.handle, |s| s.subscriptions == 0));

    fx.handle.shutdown();
    let _ = fs::remove_dir_all(&fx.dir);
}

/// Backpressure, not loss: a subscriber that isn't reading while five
/// batches land still receives all five deltas — late, in epoch order,
/// each verifying incrementally.
#[test]
fn slow_subscriber_backpressured_not_dropped() {
    let mut fx = fixture(
        "slow",
        ServerConfig {
            // Small queue: pushed deltas pile into the bounded write
            // queue and the socket, and must survive the wait.
            write_queue_limit: 4 * 1024,
            ..ServerConfig::default()
        },
    );
    let mut sub = RemoteSubscriber::subscribe(
        fx.handle.addr(),
        fx.cert.clone(),
        0,
        3,
        KeyRange::closed(1_000, 5_000),
    )
    .unwrap();

    let mut want = Vec::new();
    for i in 0..5i64 {
        let salary = 2_010 + i * 7;
        want.push(salary);
        fx.update(vec![Mutation::Insert(rec(200 + i, salary))]);
    }
    // Simulate a stalled reader: the deltas are already in flight.
    std::thread::sleep(Duration::from_millis(400));

    let mut epochs = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while epochs.len() < 5 && Instant::now() < deadline {
        if let Some(epoch) = sub.poll_delta(Duration::from_millis(500)).unwrap() {
            epochs.push(epoch);
        }
    }
    assert_eq!(epochs.len(), 5, "every delta must be delivered");
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "deltas must arrive in epoch order, got {epochs:?}"
    );
    for salary in want {
        assert!(sub.keys().contains(&salary));
    }
    assert!(
        wait_for(&fx.handle, |s| s.open_connections >= 1
            && s.subscriptions == 1),
        "slow subscriber must still be registered, not dropped"
    );

    sub.unsubscribe().unwrap();
    fx.handle.shutdown();
    let _ = fs::remove_dir_all(&fx.dir);
}

/// A subscriber that goes completely quiet is reaped by the idle timeout
/// like any other connection, and the reap cleans its registry entry: the
/// `subscriptions` gauge returns to zero and later batches push nothing.
#[test]
fn quiet_subscriber_reaped_and_registry_cleaned() {
    let mut fx = fixture(
        "reap",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(300)),
            ..ServerConfig::default()
        },
    );
    let sub = RemoteSubscriber::subscribe(
        fx.handle.addr(),
        fx.cert.clone(),
        0,
        9,
        KeyRange::closed(1_000, 5_000),
    )
    .unwrap();
    assert!(wait_for(&fx.handle, |s| s.subscriptions == 1));

    // Go quiet: no polls, no traffic. The idle timeout must reap the
    // connection and purge its subscription.
    assert!(
        wait_for(&fx.handle, |s| s.idle_reaped >= 1 && s.subscriptions == 0),
        "quiet subscriber must be idle-reaped and deregistered"
    );

    let pushed_before = fx.handle.stats().deltas_pushed;
    fx.update(vec![Mutation::Insert(rec(300, 1_750))]);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        fx.handle.stats().deltas_pushed,
        pushed_before,
        "a reaped subscription must not receive pushes"
    );

    drop(sub);
    fx.handle.shutdown();
    let _ = fs::remove_dir_all(&fx.dir);
}

/// An unshippable delta is not silently dropped: the server terminates
/// the subscription with a `ResyncRequired` push, and a subscriber with
/// no retry policy surfaces it as a typed error instead of stalling
/// forever on a stale mirror. `max_push_bytes` shrinks "unshippable"
/// from the 64 MiB frame limit to something a tiny batch exceeds.
#[test]
fn oversize_delta_pushes_typed_resync_signal() {
    let mut fx = fixture(
        "resync-fatal",
        ServerConfig {
            max_push_bytes: 64,
            ..ServerConfig::default()
        },
    );
    // The baseline is the registration *response*, not a fan-out push,
    // so it ships regardless of the push bound.
    let mut sub = RemoteSubscriber::subscribe(
        fx.handle.addr(),
        fx.cert.clone(),
        0,
        11,
        KeyRange::closed(1_000, 5_000),
    )
    .unwrap();
    assert!(wait_for(&fx.handle, |s| s.subscriptions == 1));

    fx.update(vec![Mutation::Insert(rec(400, 2_400))]);
    match sub.poll_delta(Duration::from_secs(5)) {
        Err(RemoteError::UnexpectedFrame(msg)) => {
            assert!(
                msg.contains("re-subscription"),
                "error must name the remedy, got: {msg}"
            );
        }
        other => panic!("expected the typed resync error, got {other:?}"),
    }
    // Server side: the failure is counted and the registry entry is gone
    // — no further pushes can land on the dead subscription.
    assert!(wait_for(&fx.handle, |s| s.resyncs == 1 && s.subscriptions == 0));
    // Only the registration baseline ever shipped.
    assert_eq!(fx.handle.stats().deltas_pushed, 1);

    fx.handle.shutdown();
    let _ = fs::remove_dir_all(&fx.dir);
}

/// The self-healing path for the same failure: a subscriber with a retry
/// policy honors `ResyncRequired` by re-subscribing for a fresh verified
/// baseline at least as new as the epoch the server could not ship — the
/// mirror ends up current with no manual intervention, and both sides
/// count the resync.
#[test]
fn resync_required_self_heals_with_fresh_baseline() {
    let mut fx = fixture(
        "resync-heal",
        ServerConfig {
            max_push_bytes: 64,
            ..ServerConfig::default()
        },
    );
    let mut sub = RemoteSubscriber::subscribe_with_retry(
        fx.handle.addr(),
        fx.cert.clone(),
        0,
        12,
        KeyRange::closed(1_000, 5_000),
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        },
    )
    .unwrap();
    let baseline_epoch = sub.epoch();
    assert!(wait_for(&fx.handle, |s| s.subscriptions == 1));

    let epoch = fx.update(vec![Mutation::Insert(rec(401, 2_401))]);
    let healed = sub
        .poll_delta(Duration::from_secs(5))
        .unwrap()
        .expect("the resync must resolve to a fresh baseline");
    // The fresh baseline reflects the delta the server could not ship:
    // its epoch floor is the epoch named in the ResyncRequired frame.
    assert!(healed >= epoch);
    assert!(healed > baseline_epoch);
    assert!(sub.keys().contains(&2_401));
    assert_eq!(sub.resyncs(), 1);
    assert_eq!(sub.reconnects(), 1);
    // Server side: one resync counted, and the re-registration of a
    // previously seen sub id is recognized as a reconnect.
    assert!(wait_for(&fx.handle, |s| {
        s.resyncs == 1 && s.reconnects == 1 && s.subscriptions == 1
    }));

    sub.unsubscribe().unwrap();
    fx.handle.shutdown();
    let _ = fs::remove_dir_all(&fx.dir);
}
