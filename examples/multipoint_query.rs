//! Section 4.4: multipoint queries — range selection on the sort attribute
//! combined with filters on unsorted attributes, where the result occupies
//! *multiple* segments of the key range.
//!
//! Case 1: the user may see the filtered record; the publisher disclosess
//! the failing attribute value plus digests for the rest.
//! Case 2: access control hides the record entirely; the owner maintains
//! per-role visibility columns and the publisher discloses only the
//! `vis_<role> = false` flag.
//!
//! Run with: `cargo run --release --example multipoint_query`

use adp::core::prelude::*;
use adp::relation::{
    AccessPolicy, Column, CompareOp, KeyRange, Predicate, Record, Role, RolePolicy, Schema,
    SelectQuery, Table, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ----- Case 1: plain multipoint query --------------------------------
    // The paper's example: SELECT * FROM Emp WHERE Salary < 10000 AND Dept = 1.
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
        ],
        "salary",
    );
    let mut table = Table::new("Emp", schema.clone());
    for (id, name, sal, dept) in [
        (5i64, "A", 2000i64, 1i64),
        (2, "C", 3500, 2),
        (1, "D", 8010, 1),
        (4, "B", 12100, 3),
        (3, "E", 25000, 2),
    ] {
        t_insert(&mut table, id, name, sal, dept);
    }
    let mut rng = StdRng::seed_from_u64(44);
    let owner = Owner::new(1024, &mut rng);
    let signed = owner
        .sign_table(table, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    let cert = owner.certificate(&signed);
    let publisher = Publisher::new(&signed);

    let query = SelectQuery::range(KeyRange::less_than(10_000)).filter(Predicate::new(
        "dept",
        CompareOp::Eq,
        1i64,
    ));
    let (rows, vo) = publisher.answer_select(&query).unwrap();
    let report = verify_select(&cert, &query, &rows, &vo).unwrap();
    println!("Case 1 — Salary < 10000 AND Dept = 1:");
    for r in &rows {
        println!(
            "  id={} name={} salary={} dept={}",
            r.get(0),
            r.get(1),
            r.get(2),
            r.get(3)
        );
    }
    println!(
        "  verified: {} matches, {} in-range rows proven filtered (their\n\
         failing Dept value was disclosed; names/salaries stayed hidden)\n",
        report.matched, report.filtered
    );

    // ----- Case 2: access-control filtering via visibility columns -------
    // Clearance levels: "secret" sees everything, "unclassified" must not
    // even learn the existence details of classified rows.
    let mut policy = AccessPolicy::new();
    policy.set(Role::new("secret"), RolePolicy::default());
    policy.set(
        Role::new("unclassified"),
        RolePolicy {
            row_filters: vec![Predicate::new("dept", CompareOp::Ne, 3i64)], // dept 3 is classified
            ..Default::default()
        },
    );
    // The owner materializes visibility columns and signs the extended
    // table (Section 4.4 Case 2).
    let (ext_schema, vis_cols) = policy.schema_with_visibility_columns(&schema);
    let mut ext_table = Table::new("EmpV", ext_schema.clone());
    for (id, name, sal, dept) in [
        (5i64, "A", 2000i64, 1i64),
        (2, "C", 3500, 2),
        (7, "G", 5200, 3), // classified!
        (1, "D", 8010, 1),
    ] {
        let mut values = vec![
            Value::Int(id),
            Value::from(name),
            Value::Int(sal),
            Value::Int(dept),
        ];
        values.extend(policy.visibility_flags(&schema, &values));
        ext_table.insert(Record::new(values)).unwrap();
    }
    println!("Case 2 — visibility columns added by the owner: {vis_cols:?}");
    let signed_v = owner
        .sign_table(ext_table, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    let cert_v = owner.certificate(&signed_v);
    let publisher_v = Publisher::new(&signed_v);

    // The unclassified user's query is rewritten to filter on the
    // visibility flag; the projection keeps the flag out of sight of
    // nothing (it is just a boolean).
    let user_query =
        SelectQuery::range(KeyRange::less_than(10_000)).project(&["id", "name", "salary"]);
    let mut rewritten = user_query.clone();
    rewritten
        .filters
        .push(AccessPolicy::visibility_predicate(&Role::new(
            "unclassified",
        )));
    let (rows, vo) = publisher_v.answer_select(&rewritten).unwrap();
    let report = verify_select(&cert_v, &rewritten, &rows, &vo).unwrap();
    println!("  unclassified user sees {} rows:", rows.len());
    for r in &rows {
        println!("    {r}");
    }
    println!(
        "  the classified row is proven to be legitimately filtered: only its\n\
         `vis_unclassified = false` flag was disclosed ({} filtered position).\n\
         The user learns a record exists in the range — but none of its values.",
        report.filtered
    );
    assert_eq!(report.filtered, 1);

    // A publisher that tries to *also* hide an unclassified record fails.
    let (mut bad_rows, bad_vo) = publisher_v.answer_select(&rewritten).unwrap();
    bad_rows.remove(0);
    let verdict = verify_select(&cert_v, &rewritten, &bad_rows, &bad_vo);
    println!(
        "\n  publisher over-filtering an unclassified record → {:?}",
        verdict.unwrap_err()
    );
}

fn t_insert(t: &mut Table, id: i64, name: &str, sal: i64, dept: i64) {
    t.insert(Record::new(vec![
        Value::Int(id),
        Value::from(name),
        Value::Int(sal),
        Value::Int(dept),
    ]))
    .unwrap();
}
