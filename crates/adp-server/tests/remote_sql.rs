//! SQL over the wire: a `SqlSession` plans statements locally, ships the
//! cheapest-proof plan as a protocol-v6 `PlannedQuery` frame, and verifies
//! the multi-relation VO that comes back against owner certificates alone.
//! The suite pins the acceptance bar for the planner: the chosen plan's VO
//! must be *measurably smaller* than the naive full-domain plan's on the
//! committed fixture, and joins + aggregates must round-trip verified.

use adp_core::prelude::*;
use adp_relation::{check_referential_integrity, Column, Record, Schema, Table, Value, ValueType};
use adp_server::{RemoteClient, RemoteError, RemoteVerifier, Server, SqlSession};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Employees sorted on their dept foreign key: 6 rows over depts
/// {10, 20, 30, 40}, referentially contained in [`dept_table`].
fn emp_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("dept", ValueType::Int),
        ],
        "dept",
    );
    let mut t = Table::new("emp", schema);
    for (id, name, dept) in [
        (5i64, "A", 10i64),
        (1, "D", 10),
        (2, "C", 20),
        (3, "E", 20),
        (4, "B", 30),
        (6, "F", 40),
    ] {
        t.insert(Record::new(vec![
            Value::Int(id),
            Value::from(name),
            Value::Int(dept),
        ]))
        .unwrap();
    }
    t
}

/// Departments keyed on dept id: 5 rows, one (legal/50) never joined.
fn dept_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("dept", ValueType::Int),
            Column::new("dname", ValueType::Text),
            Column::new("budget", ValueType::Int),
        ],
        "dept",
    );
    let mut t = Table::new("dept", schema);
    for (d, n, b) in [
        (10i64, "eng", 500i64),
        (20, "sales", 300),
        (30, "hr", 100),
        (40, "ops", 200),
        (50, "legal", 50),
    ] {
        t.insert(Record::new(vec![
            Value::Int(d),
            Value::from(n),
            Value::Int(b),
        ]))
        .unwrap();
    }
    t
}

struct Fixture {
    emp: Arc<SignedTable>,
    dept: Arc<SignedTable>,
    emp_cert: Certificate,
    dept_cert: Certificate,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x50_1A);
        let owner = Owner::new(512, &mut rng);
        let emp_raw = emp_table();
        let dept_raw = dept_table();
        check_referential_integrity(&emp_raw, &dept_raw).unwrap();
        let emp = owner
            .sign_table(emp_raw, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let dept = owner
            .sign_table(dept_raw, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let emp_cert = owner.certificate(&emp);
        let dept_cert = owner.certificate(&dept);
        Fixture {
            emp: Arc::new(emp),
            dept: Arc::new(dept),
            emp_cert,
            dept_cert,
        }
    })
}

fn start_server() -> adp_server::ServerHandle {
    let fix = fixture();
    let mut server = Server::new(adp_server::ServerConfig::default());
    server.add_shared_table(0, Arc::clone(&fix.emp));
    server.add_shared_table(1, Arc::clone(&fix.dept));
    server.serve("127.0.0.1:0").expect("bind ephemeral port")
}

/// Builds a session that knows both tables and the owner-declared
/// referential integrity emp.dept → dept.dept.
fn session(addr: std::net::SocketAddr) -> SqlSession {
    let fix = fixture();
    let mut s = SqlSession::connect(addr).unwrap();
    s.add_table(0, fix.emp_cert.clone(), 6);
    s.add_table(1, fix.dept_cert.clone(), 5);
    s.declare_fk("emp", "dept");
    s
}

#[test]
fn planned_select_round_trips_and_beats_naive_vo() {
    let handle = start_server();
    let mut s = session(handle.addr());

    let sql = "SELECT * FROM emp WHERE dept BETWEEN 10 AND 20";
    let out = s.query_sql(sql).unwrap();
    assert_eq!(out.output.rows.len(), 4, "depts 10,10,20,20");
    assert!(out.rows_verified >= 4);
    assert!(out.signatures_verified > 0);
    assert!(
        out.planned.passes_applied.contains(&"predicate-pushdown"),
        "pushdown must fire: {:?}",
        out.planned.passes_applied
    );
    // The chosen plan scans only [10, 20]; the naive plan scans the whole
    // domain with the predicate as client-side residue. The proof for the
    // narrow range must be strictly smaller on the wire.
    assert!(
        out.planned.chosen_cost.score() < out.planned.naive_cost.score(),
        "planner must price the narrow scan cheaper"
    );
    let (naive_result, naive_vo) = s
        .client_mut()
        .query_planned_raw(&out.planned.naive.wire)
        .unwrap();
    assert!(
        out.vo_bytes < naive_vo.len(),
        "chosen VO {} bytes must beat naive VO {} bytes",
        out.vo_bytes,
        naive_vo.len()
    );
    assert!(out.result_bytes < naive_result.len());

    handle.shutdown();
}

#[test]
fn planned_join_verifies_end_to_end() {
    let handle = start_server();
    let mut s = session(handle.addr());

    let sql = "SELECT emp.name, dept.dname FROM emp \
               INNER JOIN dept ON emp.dept = dept.dept \
               WHERE emp.dept BETWEEN 10 AND 20";
    let out = s.query_sql(sql).unwrap();
    // Four emp rows over depts {10, 20}, each matched to its department.
    assert_eq!(out.output.rows.len(), 4);
    let mut pairs: Vec<(String, String)> = out
        .output
        .rows
        .iter()
        .map(|r| {
            let name = |c: &str| {
                let i = out.output.columns.iter().position(|x| x == c).unwrap();
                match &r.values()[i] {
                    Value::Text(t) => t.clone(),
                    v => panic!("expected text, got {v:?}"),
                }
            };
            (name("emp.name"), name("dept.dname"))
        })
        .collect();
    pairs.sort();
    assert_eq!(
        pairs,
        vec![
            ("A".into(), "eng".into()),
            ("C".into(), "sales".into()),
            ("D".into(), "eng".into()),
            ("E".into(), "sales".into()),
        ]
    );
    // Both relations' chains were verified: 4 outer pairs + the inner
    // boundary rows all contribute to the verified count.
    assert!(out.rows_verified > 4);
    assert!(out.signatures_verified >= 2, "one signature per relation");

    // FROM listed emp first and emp is the declared fk side, so join-order
    // keeps it outer; pushdown then narrows both scans through the fk
    // range transfer.
    assert!(out.planned.passes_applied.contains(&"predicate-pushdown"));

    handle.shutdown();
}

#[test]
fn planned_join_beats_naive_on_vo_bytes() {
    let handle = start_server();
    let mut s = session(handle.addr());

    let sql = "SELECT * FROM emp INNER JOIN dept ON emp.dept = dept.dept \
               WHERE emp.dept BETWEEN 10 AND 20";
    let out = s.query_sql(sql).unwrap();
    assert_eq!(out.output.rows.len(), 4);

    let (_, naive_vo) = s
        .client_mut()
        .query_planned_raw(&out.planned.naive.wire)
        .unwrap();
    assert!(
        out.vo_bytes < naive_vo.len(),
        "narrowed join VO {} bytes must beat naive {} bytes",
        out.vo_bytes,
        naive_vo.len()
    );

    handle.shutdown();
}

#[test]
fn planned_aggregates_round_trip() {
    let handle = start_server();
    let mut s = session(handle.addr());

    let out = s
        .query_sql("SELECT COUNT(*) FROM emp WHERE dept >= 20")
        .unwrap();
    let (label, value) = out.output.aggregate.clone().unwrap();
    assert_eq!(label, "COUNT(*)");
    assert!(matches!(value, AggregateValue::Count(4)));

    let out = s
        .query_sql("SELECT SUM(budget) FROM dept WHERE dept BETWEEN 10 AND 30")
        .unwrap();
    let (label, value) = out.output.aggregate.clone().unwrap();
    assert_eq!(label, "SUM(budget)");
    assert!(matches!(value, AggregateValue::Sum(900)), "{value:?}");

    // Aggregate over a join: total budget reachable from employees in
    // depts [10, 20] — eng(500) + sales(300), counted once per emp pair.
    let out = s
        .query_sql(
            "SELECT SUM(dept.budget) FROM emp \
             INNER JOIN dept ON emp.dept = dept.dept \
             WHERE emp.dept BETWEEN 10 AND 20",
        )
        .unwrap();
    let (_, value) = out.output.aggregate.clone().unwrap();
    // 2 emps in eng + 2 in sales: 2*500 + 2*300.
    assert!(matches!(value, AggregateValue::Sum(1_600)), "{value:?}");

    handle.shutdown();
}

#[test]
fn session_stats_accumulate_and_cache_serves_repeats() {
    let handle = start_server();
    let mut s = session(handle.addr());

    let sql = "SELECT * FROM emp WHERE dept BETWEEN 10 AND 30";
    s.query_sql(sql).unwrap();
    s.query_sql(sql).unwrap();
    let stats = s.stats();
    assert_eq!(stats.queries, 2);
    assert!(stats.vo_bytes > 0 && stats.rows_verified >= 10);

    let server_stats = s.client_mut().stats().unwrap();
    assert_eq!(server_stats.cache_misses, 1, "identical plan re-served");
    assert!(server_stats.cache_hits >= 1);

    handle.shutdown();
}

#[test]
fn single_table_query_sql_convenience_on_remote_verifier() {
    let handle = start_server();
    let fix = fixture();
    let mut user = RemoteVerifier::connect(handle.addr(), fix.dept_cert.clone(), 1).unwrap();

    let out = user
        .query_sql("SELECT dname FROM dept WHERE dept BETWEEN 20 AND 40")
        .unwrap();
    assert_eq!(out.output.rows.len(), 3);
    assert_eq!(user.stats().queries, 1);

    handle.shutdown();
}

#[test]
fn sql_errors_are_client_side_and_connection_survives() {
    let handle = start_server();
    let mut s = session(handle.addr());

    // Parse error.
    assert!(matches!(
        s.query_sql("SELEKT * FROM emp"),
        Err(RemoteError::Sql(_))
    ));
    // Unknown table.
    assert!(matches!(
        s.query_sql("SELECT * FROM nope"),
        Err(RemoteError::Sql(_))
    ));
    // Unsupported shape: non-key predicate over a join.
    assert!(matches!(
        s.query_sql(
            "SELECT * FROM emp INNER JOIN dept ON emp.dept = dept.dept \
             WHERE budget >= 100"
        ),
        Err(RemoteError::Sql(_))
    ));
    // None of those touched the wire; the connection still works.
    let out = s.query_sql("SELECT COUNT(*) FROM dept").unwrap();
    assert!(matches!(
        out.output.aggregate.as_ref().unwrap().1,
        AggregateValue::Count(5)
    ));

    handle.shutdown();
}

#[test]
fn unknown_table_id_in_plan_is_a_server_error() {
    let handle = start_server();
    let mut client = RemoteClient::connect(handle.addr()).unwrap();

    let plan = adp_core::plan::WirePlan::Select {
        table_id: 42,
        query: adp_relation::SelectQuery::range(adp_relation::KeyRange::all()),
    };
    match client.query_planned_raw(&plan) {
        Err(RemoteError::Server { code, .. }) => {
            assert_eq!(code, adp_server::ErrorCode::UnknownTable)
        }
        other => panic!("expected UnknownTable, got {other:?}"),
    }
    // Connection survives the refused plan.
    client.ping().unwrap();

    handle.shutdown();
}
