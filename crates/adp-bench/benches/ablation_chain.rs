//! **Ablation (Section 5.1's motivation)**: conceptual single chains vs the
//! base-`B` digit optimization.
//!
//! The paper: "for a four-byte integer field, g(r) entails 2^32 hashes in
//! the worst case, which requires almost 60 hours at 50 µsec per hash" —
//! the reason Section 5.1 exists. This bench measures owner-side `g`
//! computation and user-side verification hash counts for growing domain
//! widths in both modes, and extrapolates the conceptual cost at 2^32.

use adp_bench::{bench_owner_small, f2, TablePrinter};
use adp_core::costmodel::CostParams;
use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use std::time::Instant;

fn build_and_probe(config: SchemeConfig, width_pow: u32) -> (u64, u64, f64) {
    let domain = Domain::new(0, (1i64 << width_pow) + 4);
    let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let mut table = Table::new("abl", schema);
    let mid = domain.key_min() + (domain.key_max() - domain.key_min()) / 2;
    for i in 0..3i64 {
        table
            .insert(Record::new(vec![Value::Int(mid + i)]))
            .unwrap();
    }
    let owner = bench_owner_small();
    adp_crypto::reset_hash_ops();
    let st = owner.sign_table(table, domain, config).unwrap();
    let sign_ops = adp_crypto::hash_ops() / 5; // per chain position
    let cert = owner.certificate(&st);
    let publisher = Publisher::new(&st);
    let query = SelectQuery::range(KeyRange::point(mid + 1));
    let (result, vo) = publisher.answer_select(&query).unwrap();
    adp_crypto::reset_hash_ops();
    let start = Instant::now();
    verify_select(&cert, &query, &result, &vo).unwrap();
    let verify_ms = start.elapsed().as_secs_f64() * 1000.0;
    let verify_ops = adp_crypto::hash_ops();
    (sign_ops, verify_ops, verify_ms)
}

fn main() {
    println!("\n=== Ablation: conceptual chains vs base-B optimization ===\n");
    let t = TablePrinter::new(&["mode", "domain", "owner ops/rec", "verify ops", "verify ms"]);
    for width_pow in [8u32, 12, 16, 20] {
        let (s, v, ms) = build_and_probe(SchemeConfig::conceptual(), width_pow);
        t.row(&[
            "conceptual",
            &format!("2^{width_pow}"),
            &s.to_string(),
            &v.to_string(),
            &format!("{ms:.3}"),
        ]);
    }
    for base in [2u32, 3, 10] {
        for width_pow in [8u32, 16, 32] {
            let (s, v, ms) = build_and_probe(SchemeConfig::with_base(base), width_pow);
            t.row(&[
                &format!("optimized B={base}"),
                &format!("2^{width_pow}"),
                &s.to_string(),
                &v.to_string(),
                &format!("{ms:.3}"),
            ]);
        }
    }

    // The paper's 60-hour extrapolation.
    let params = CostParams::default();
    let conceptual_2_32_hours = (1u64 << 32) as f64 * params.c_hash_us / 1e6 / 3600.0;
    println!(
        "\nExtrapolation at 2^32 domain width (4-byte keys):\n\
         conceptual: ~2^32 hashes = {} hours at the paper's 50 us/hash\n\
         (the paper says \"almost 60 hours\"); the optimized scheme needs a\n\
         few hundred hashes (see rows above) — the entire point of Section 5.1.\n",
        f2(conceptual_2_32_hours)
    );
}
