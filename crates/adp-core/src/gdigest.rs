//! Computing the per-record digest `g(r)` (formulas (2)/(3), Figures 6–7).
//!
//! For the relational scheme, formula (3) defines
//!
//! ```text
//! g(r) = h^{U - r.K - 1}(r.K) | h^{r.K - L - 1}(r.K) | MHT(r.A)
//! ```
//!
//! — an *up* chain component binding how far `r.K` sits below `U`, a *down*
//! chain component binding how far it sits above `L`, and the root of a
//! Merkle tree over the non-key attributes. `g(r)` is a **concatenation**
//! (3 digests); the signature chain hashes triples of them (formula (1)).
//!
//! In [`Mode::Optimized`] each chain component is replaced by the Figure 7
//! construction: `comp = h( h(δ_t) | MHT(^0δ_t … ^{m-1}δ_t) )`, where
//! `h(δ_t)` hashes the concatenation of the `m+1` canonical digit-chain
//! digests `h^{δ_{t,i}}(r.K|i)` and the Merkle tree commits to the `m`
//! preferred non-canonical representations.
//!
//! Chains of the two directions are tagged with disjoint position spaces so
//! an up-chain digest can never be replayed as a down-chain digest.

use crate::domain::{key_bytes, Domain};
use crate::repr::Radix;
use crate::scheme::{Mode, SchemeConfig};
use adp_crypto::{chain_from_value, chain_run, hasher::HashDomain, Digest, Hasher, MerkleTree};
use adp_relation::{Record, Schema, Value};

/// Chain direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `δ_t = U - K - 1`; proves origins (`K < α` for boundaries).
    Up,
    /// `δ_t = K - L - 1`; proves terminals (`K > β`).
    Down,
}

impl Direction {
    /// Position tag for digit `i`: the two directions use disjoint spaces.
    #[inline]
    pub fn tag(&self, digit: u32) -> u32 {
        match self {
            Direction::Up => digit,
            Direction::Down => 0x8000_0000 | digit,
        }
    }

    /// `δ_t` of `key` in this direction.
    pub fn delta_t(&self, domain: &Domain, key: i64) -> u64 {
        match self {
            Direction::Up => domain.delta_up(key),
            Direction::Down => domain.delta_down(key),
        }
    }
}

/// The `g(r)` digest triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GDigest {
    pub up: Digest,
    pub down: Digest,
    pub attrs: Digest,
}

impl GDigest {
    /// The concatenated byte form entering the signature-chain hash.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.up.len() + self.down.len() + self.attrs.len());
        v.extend_from_slice(self.up.as_bytes());
        v.extend_from_slice(self.down.as_bytes());
        v.extend_from_slice(self.attrs.as_bytes());
        v
    }
}

/// What a verifier may know of a neighbour's `g`: either the full triple
/// (derivable) or opaque bytes handed over by the publisher, or the domain
/// edge anchors `h(L)` / `h(U)` flanking the delimiters (formula (1)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GBytes {
    Full(GDigest),
    Opaque(Vec<u8>),
    LeftEdge,
    RightEdge,
}

impl GBytes {
    /// Resolves to raw bytes for the link hash.
    pub fn resolve(&self, hasher: &Hasher, domain: &Domain) -> Vec<u8> {
        match self {
            GBytes::Full(g) => g.to_bytes(),
            GBytes::Opaque(b) => b.clone(),
            GBytes::LeftEdge => edge_digest(hasher, domain.l()).as_bytes().to_vec(),
            GBytes::RightEdge => edge_digest(hasher, domain.u()).as_bytes().to_vec(),
        }
    }
}

/// The edge anchor digest `h(L)` / `h(U)` (publicly computable).
pub fn edge_digest(hasher: &Hasher, bound: i64) -> Digest {
    hasher.hash_parts(HashDomain::Value, &[b"__edge__", &key_bytes(bound)])
}

/// The signature-chain link digest
/// `h( g(r_{i-1}) | g(r_i) | g(r_{i+1}) )` (formula (1)).
pub fn link_digest(hasher: &Hasher, prev: &[u8], cur: &[u8], next: &[u8]) -> Digest {
    hasher.hash_parts(HashDomain::Link, &[prev, cur, next])
}

/// Bulk form of [`link_digest`] over a whole chain: `encoded` is the
/// sequence `[h(L), g(r_0), …, g(r_{n+1}), h(U)]` and the result is the
/// `n + 2` link digests, each byte-identical to the single-link form.
/// The owner signs tables through this so every `g` is serialized once.
pub fn link_digests_run(hasher: &Hasher, encoded: &[&[u8]]) -> Vec<Digest> {
    hasher.hash_triple_windows(HashDomain::Link, encoded)
}

/// Owner/publisher-side materials for one chain direction of one record.
#[derive(Clone, Debug)]
pub struct DirectionCommitment {
    /// The finished component entering `g(r)`.
    pub component: Digest,
    /// Optimized mode: digest of the canonical representation `h(δ_t)`.
    pub canon_digest: Option<Digest>,
    /// Optimized mode: Merkle tree over the `m` preferred non-canonical
    /// representation digests.
    pub rep_tree: Option<MerkleTree>,
}

/// Computes the digit-chain digest `h^{steps}(key|tag(digit))`.
pub fn digit_chain(hasher: &Hasher, key: i64, dir: Direction, digit: u32, steps: u64) -> Digest {
    chain_from_value(hasher, &key_bytes(key), dir.tag(digit), steps)
}

/// Hashes one representation's component digests into `h(δ)`
/// (components whose digit was dropped — invalid representations — are
/// simply absent; positions stay bound through the chain tags).
pub fn rep_digest(hasher: &Hasher, components: &[Digest]) -> Digest {
    hasher.hash_digests(HashDomain::Rep, components)
}

/// Combines `h(δ_t)` with the non-canonical-representation MHT root into
/// the direction component (Figure 7).
pub fn combine_component(hasher: &Hasher, canon: Digest, mht_root: Digest) -> Digest {
    hasher.hash_digests(HashDomain::Comp, &[canon, mht_root])
}

/// Owner/publisher-side computation of one direction's commitment.
pub fn direction_commitment(
    hasher: &Hasher,
    config: &SchemeConfig,
    radix: Option<&Radix>,
    domain: &Domain,
    key: i64,
    dir: Direction,
) -> DirectionCommitment {
    let delta_t = dir.delta_t(domain, key);
    match config.mode {
        Mode::Conceptual => DirectionCommitment {
            component: digit_chain(hasher, key, dir, 0, delta_t),
            canon_digest: None,
            rep_tree: None,
        },
        Mode::Optimized { base } => {
            let radix = radix.expect("optimized mode needs a radix");
            debug_assert_eq!(radix.base(), base);
            let canon = radix.canonical(delta_t);
            let m = radix.m();
            let at = |digit: u32, steps: u64| digit_chain(hasher, key, dir, digit, steps);
            // Canonical representation digest: all digit chains share the
            // key bytes, so run them through the bulk chain API.
            let canon_tags: Vec<(u32, u64)> = canon
                .iter()
                .enumerate()
                .map(|(i, &d)| (dir.tag(i as u32), d as u64))
                .collect();
            let canon_components = chain_run(hasher, &key_bytes(key), &canon_tags);
            let canon_digest = rep_digest(hasher, &canon_components);
            // The m preferred non-canonical representations.
            let mut leaves = Vec::with_capacity(m as usize);
            for j in 0..m {
                let rep = radix.preferred(&canon, j);
                let comps: Vec<Digest> = rep
                    .iter()
                    .enumerate()
                    .filter_map(|(i, d)| d.map(|d| at(i as u32, d as u64)))
                    .collect();
                leaves.push(rep_digest(hasher, &comps));
            }
            let rep_tree = MerkleTree::build(*hasher, leaves);
            let component = combine_component(hasher, canon_digest, rep_tree.root());
            DirectionCommitment {
                component,
                canon_digest: Some(canon_digest),
                rep_tree: Some(rep_tree),
            }
        }
    }
}

/// Verifier-side recomputation of a direction component for a *result
/// entry*, whose key is disclosed (Figure 8b): the user rebuilds the
/// canonical digit chains from the key and combines with the rep-MHT root
/// supplied by the publisher (`None` in conceptual mode, where the chain
/// alone is the component).
pub fn entry_component(
    hasher: &Hasher,
    config: &SchemeConfig,
    radix: Option<&Radix>,
    domain: &Domain,
    key: i64,
    dir: Direction,
    rep_root: Option<Digest>,
) -> Digest {
    let delta_t = dir.delta_t(domain, key);
    match config.mode {
        Mode::Conceptual => digit_chain(hasher, key, dir, 0, delta_t),
        Mode::Optimized { .. } => {
            let radix = radix.expect("optimized mode needs a radix");
            let canon = radix.canonical(delta_t);
            let tags: Vec<(u32, u64)> = canon
                .iter()
                .enumerate()
                .map(|(i, &d)| (dir.tag(i as u32), d as u64))
                .collect();
            let comps = chain_run(hasher, &key_bytes(key), &tags);
            let canon_digest = rep_digest(hasher, &comps);
            let root = rep_root.expect("optimized mode needs the rep-MHT root");
            combine_component(hasher, canon_digest, root)
        }
    }
}

/// Attribute leaf encoding: the canonical byte form of a value.
pub fn attr_leaf_bytes(value: &Value) -> Vec<u8> {
    value.encode()
}

/// Builds `MHT(r.A)` over the non-key attributes of a record, returning the
/// tree (owner/publisher side). Records with no non-key attributes commit
/// to a fixed sentinel leaf.
pub fn attr_tree(hasher: &Hasher, schema: &Schema, record: &Record) -> MerkleTree {
    let key_idx = schema.key_index();
    let leaves: Vec<Digest> = record
        .values()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != key_idx)
        .map(|(_, v)| hasher.hash(HashDomain::Leaf, &attr_leaf_bytes(v)))
        .collect();
    if leaves.is_empty() {
        MerkleTree::build(
            *hasher,
            vec![hasher.hash(HashDomain::Leaf, b"\x00__no_attrs__")],
        )
    } else {
        MerkleTree::build(*hasher, leaves)
    }
}

/// The attribute digest of a delimiter pseudo-record.
pub fn delimiter_attr_digest(hasher: &Hasher) -> Digest {
    hasher.hash(HashDomain::Leaf, b"\x00__delimiter__")
}

/// Owner/publisher-side computation of the full `g(r)` for a real record.
pub fn g_of_record(
    hasher: &Hasher,
    config: &SchemeConfig,
    radix: Option<&Radix>,
    domain: &Domain,
    schema: &Schema,
    record: &Record,
) -> GDigest {
    let key = record.key(schema);
    GDigest {
        up: direction_commitment(hasher, config, radix, domain, key, Direction::Up).component,
        down: direction_commitment(hasher, config, radix, domain, key, Direction::Down).component,
        attrs: attr_tree(hasher, schema, record).root(),
    }
}

/// Owner/publisher-side `g` of a delimiter.
pub fn g_of_delimiter(
    hasher: &Hasher,
    config: &SchemeConfig,
    radix: Option<&Radix>,
    domain: &Domain,
    key: i64,
) -> GDigest {
    GDigest {
        up: direction_commitment(hasher, config, radix, domain, key, Direction::Up).component,
        down: direction_commitment(hasher, config, radix, domain, key, Direction::Down).component,
        attrs: delimiter_attr_digest(hasher),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{Column, ValueType};

    fn setup() -> (Hasher, Domain) {
        (Hasher::default(), Domain::new(0, 100_000))
    }

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
            ],
            "salary",
        )
    }

    #[test]
    fn direction_tags_disjoint() {
        assert_ne!(Direction::Up.tag(3), Direction::Down.tag(3));
        assert_eq!(Direction::Up.tag(3), 3);
    }

    #[test]
    fn conceptual_component_is_plain_chain() {
        let (h, d) = setup();
        let cfg = SchemeConfig::conceptual();
        let c = direction_commitment(&h, &cfg, None, &d, 99_000, Direction::Up);
        assert!(c.canon_digest.is_none() && c.rep_tree.is_none());
        assert_eq!(
            c.component,
            digit_chain(&h, 99_000, Direction::Up, 0, d.delta_up(99_000))
        );
    }

    #[test]
    fn entry_component_matches_commitment_optimized() {
        // The verifier's Figure-8b reconstruction must agree with the
        // owner's Figure-7 construction for both directions and bases.
        let (h, d) = setup();
        for base in [2u32, 3, 10] {
            let cfg = SchemeConfig::with_base(base);
            let radix = Radix::for_width(base, d.width());
            for key in [2i64, 57, 5_000, 99_998] {
                for dir in [Direction::Up, Direction::Down] {
                    let commit = direction_commitment(&h, &cfg, Some(&radix), &d, key, dir);
                    let rebuilt = entry_component(
                        &h,
                        &cfg,
                        Some(&radix),
                        &d,
                        key,
                        dir,
                        Some(commit.rep_tree.as_ref().unwrap().root()),
                    );
                    assert_eq!(rebuilt, commit.component, "B={base} key={key} {dir:?}");
                }
            }
        }
    }

    #[test]
    fn entry_component_matches_commitment_conceptual() {
        let (h, d) = setup();
        let cfg = SchemeConfig::conceptual();
        let commit = direction_commitment(&h, &cfg, None, &d, 1234, Direction::Down);
        let rebuilt = entry_component(&h, &cfg, None, &d, 1234, Direction::Down, None);
        assert_eq!(rebuilt, commit.component);
    }

    #[test]
    fn g_concatenation_layout() {
        let (h, d) = setup();
        let cfg = SchemeConfig::default();
        let radix = Radix::for_width(2, d.width());
        let rec = Record::new(vec![Value::Int(1), Value::from("A"), Value::Int(2000)]);
        let g = g_of_record(&h, &cfg, Some(&radix), &d, &schema(), &rec);
        let bytes = g.to_bytes();
        assert_eq!(bytes.len(), 3 * h.digest_len());
        assert_eq!(&bytes[..16], g.up.as_bytes());
        assert_eq!(&bytes[32..], g.attrs.as_bytes());
    }

    #[test]
    fn attr_tree_excludes_key() {
        let (h, _) = setup();
        let s = schema();
        let r1 = Record::new(vec![Value::Int(1), Value::from("A"), Value::Int(2000)]);
        let r2 = Record::new(vec![Value::Int(1), Value::from("A"), Value::Int(3000)]);
        // Same non-key attributes, different key → same attribute tree.
        assert_eq!(attr_tree(&h, &s, &r1).root(), attr_tree(&h, &s, &r2).root());
        let r3 = Record::new(vec![Value::Int(2), Value::from("A"), Value::Int(2000)]);
        assert_ne!(attr_tree(&h, &s, &r1).root(), attr_tree(&h, &s, &r3).root());
    }

    #[test]
    fn key_only_schema_has_sentinel_attr_tree() {
        let (h, _) = setup();
        let s = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
        let r = Record::new(vec![Value::Int(5)]);
        let t = attr_tree(&h, &s, &r);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn different_keys_different_components() {
        let (h, d) = setup();
        let cfg = SchemeConfig::with_base(2);
        let radix = Radix::for_width(2, d.width());
        let c1 = direction_commitment(&h, &cfg, Some(&radix), &d, 100, Direction::Up);
        let c2 = direction_commitment(&h, &cfg, Some(&radix), &d, 101, Direction::Up);
        assert_ne!(c1.component, c2.component);
    }

    #[test]
    fn up_down_components_differ() {
        // Even for a key at the exact domain midpoint (δ_up == δ_down), the
        // direction tags keep components distinct.
        let (h, _) = setup();
        let d = Domain::new(0, 100);
        let key = 50; // δ_up = 49, δ_down = 49
        assert_eq!(d.delta_up(key), d.delta_down(key));
        let cfg = SchemeConfig::with_base(2);
        let radix = Radix::for_width(2, d.width());
        let up = direction_commitment(&h, &cfg, Some(&radix), &d, key, Direction::Up);
        let down = direction_commitment(&h, &cfg, Some(&radix), &d, key, Direction::Down);
        assert_ne!(up.component, down.component);
    }

    #[test]
    fn edge_digests_distinct() {
        let (h, d) = setup();
        assert_ne!(edge_digest(&h, d.l()), edge_digest(&h, d.u()));
        // Edge anchors must differ from ordinary value chains at the bound.
        assert_ne!(
            edge_digest(&h, d.l()),
            digit_chain(&h, d.l(), Direction::Up, 0, 0)
        );
    }

    #[test]
    fn gbytes_resolution() {
        let (h, d) = setup();
        let g = GDigest {
            up: h.hash(HashDomain::Data, b"u"),
            down: h.hash(HashDomain::Data, b"d"),
            attrs: h.hash(HashDomain::Data, b"a"),
        };
        assert_eq!(GBytes::Full(g).resolve(&h, &d), g.to_bytes());
        assert_eq!(GBytes::Opaque(vec![1, 2, 3]).resolve(&h, &d), vec![1, 2, 3]);
        assert_eq!(
            GBytes::LeftEdge.resolve(&h, &d),
            edge_digest(&h, d.l()).as_bytes().to_vec()
        );
    }
}
