//! Named, composable, semantics-preserving rewrite passes over the
//! logical [`Plan`] IR, plus the cost-driven [`Planner`] that strings
//! them together.
//!
//! Every pass is pinned by at least one algebraic law in
//! `tests/planner_laws.rs`, checking both *result multiset equality*
//! pre/post rewrite and *verifiability preservation* (the rewritten
//! plan's VO still verifies against the owner's certificate). The law
//! names follow their relational-algebra analogues:
//!
//! | pass                  | law(s)                                   |
//! |-----------------------|------------------------------------------|
//! | `filter-merge`        | filter merge, selection commutativity    |
//! | `join-order`          | join commutativity (declared pk-fk)      |
//! | `predicate-pushdown`  | selection pushdown                       |
//! | `projection-pruning`  | projection pushdown / idempotence        |
//! | `distinct-elimination`| distinct elimination on key-bearing output|
//!
//! The planner does not pick the cheapest *scan* — it prices every
//! candidate with [`crate::plan::estimate_cost`] (formulas (4)/(5) VO
//! bytes + verification time) and picks the plan with the cheapest
//! **proof**.

use crate::costmodel::CostParams;
use crate::plan::{
    estimate_cost, lower, physical, Catalog, PhysicalPlan, Plan, PlanCost, PlanError, ProjectList,
};
use crate::sql::Statement;
use adp_relation::{CompareOp, KeyRange};

/// One rewrite pass. Passes are total: on shapes they do not understand
/// they return the plan unchanged.
pub trait Pass {
    /// Stable kebab-case identifier (shows up in EXPLAIN output and CI).
    fn name(&self) -> &'static str;
    /// The algebraic law pinning this pass in `planner_laws.rs`.
    fn law(&self) -> &'static str;
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan;
}

fn op_rank(op: CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::Ne => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    }
}

/// The sort key of the table a join-free subtree scans, if known.
fn side_key_name<'a>(plan: &Plan, catalog: &'a Catalog) -> Option<&'a str> {
    let t = catalog.table(plan.scan_table()?)?;
    Some(t.schema.key_name())
}

/// The side's *effective* key range: its scan range intersected with any
/// range-convertible key predicates sitting in filters above it.
fn effective_side_range(plan: &Plan, catalog: &Catalog) -> KeyRange {
    fn walk(plan: &Plan, key: &str, acc: &mut KeyRange) {
        match plan {
            Plan::Scan { range, .. } => *acc = acc.intersect(range),
            Plan::Filter { input, predicates } => {
                for p in predicates {
                    if p.column == key {
                        if let Some(kr) = KeyRange::from_predicate(p) {
                            *acc = acc.intersect(&kr);
                        }
                    }
                }
                walk(input, key, acc);
            }
            Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. } => walk(input, key, acc),
            Plan::Join { .. } => {}
        }
    }
    let mut acc = KeyRange::all();
    if let Some(key) = side_key_name(plan, catalog) {
        walk(plan, key, &mut acc);
    }
    acc
}

/// Merges adjacent Filter nodes and canonically orders their predicates
/// (selection is commutative; the proof does not care in which order the
/// conjuncts were written).
pub struct FilterMerge;

impl Pass for FilterMerge {
    fn name(&self) -> &'static str {
        "filter-merge"
    }
    fn law(&self) -> &'static str {
        "filter merge / selection commutativity"
    }
    #[allow(clippy::only_used_in_recursion)] // `catalog` is fixed by the trait
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan {
        match plan {
            Plan::Filter { input, predicates } => {
                let inner = self.apply(input, catalog);
                let mut preds = Vec::new();
                let below = if let Plan::Filter {
                    input: below,
                    predicates: inner_preds,
                } = inner
                {
                    preds.extend(inner_preds);
                    *below
                } else {
                    inner
                };
                preds.extend(predicates.iter().cloned());
                preds.sort_by(|a, b| {
                    (a.column.as_str(), op_rank(a.op), format!("{:?}", a.value)).cmp(&(
                        b.column.as_str(),
                        op_rank(b.op),
                        format!("{:?}", b.value),
                    ))
                });
                Plan::Filter {
                    input: Box::new(below),
                    predicates: preds,
                }
            }
            other => map_children(other, &|p| self.apply(p, catalog)),
        }
    }
}

/// Reorients a pk-fk join so the declared foreign-key side is the outer
/// scan (the only orientation Section 4.3 can prove); with mutually
/// declared integrity, picks the side with the narrower effective key
/// range — the orientation with the cheaper proof.
pub struct JoinOrder;

impl Pass for JoinOrder {
    fn name(&self) -> &'static str {
        "join-order"
    }
    fn law(&self) -> &'static str {
        "join commutativity (declared pk-fk)"
    }
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan {
        match plan {
            Plan::Join { outer, inner } => {
                let swap = match (
                    outer.scan_table().and_then(|t| catalog.table(t)),
                    inner.scan_table().and_then(|t| catalog.table(t)),
                ) {
                    (Some(ot), Some(it)) => {
                        let outer_is_fk = ot.fk_into.as_deref() == Some(it.name.as_str());
                        let inner_is_fk = it.fk_into.as_deref() == Some(ot.name.as_str());
                        if outer_is_fk == inner_is_fk {
                            // Mutually declared (or undeclared): outer
                            // should be the side with the narrower
                            // effective range — smaller q in formula (4).
                            // Only safe to swap when both are declared.
                            inner_is_fk
                                && range_width(&effective_side_range(inner, catalog))
                                    < range_width(&effective_side_range(outer, catalog))
                        } else {
                            inner_is_fk
                        }
                    }
                    _ => false,
                };
                if swap {
                    Plan::Join {
                        outer: inner.clone(),
                        inner: outer.clone(),
                    }
                } else {
                    plan.clone()
                }
            }
            other => map_children(other, &|p| self.apply(p, catalog)),
        }
    }
}

fn range_width(r: &KeyRange) -> u128 {
    use std::ops::Bound;
    let lo = match r.lo {
        Bound::Unbounded => i64::MIN as i128,
        Bound::Included(v) => v as i128,
        Bound::Excluded(v) => v as i128 + 1,
    };
    let hi = match r.hi {
        Bound::Unbounded => i64::MAX as i128,
        Bound::Included(v) => v as i128,
        Bound::Excluded(v) => v as i128 - 1,
    };
    (hi - lo + 1).max(0) as u128
}

/// Folds range-convertible key predicates into the scan's key range —
/// the verified analogue of selection pushdown: the publisher then proves
/// the narrow range instead of the client downloading (and paying VO
/// bytes for) the whole domain. Over a join, also transfers the inner
/// side's key range onto the outer scan: on every joined pair
/// `R.fk = S.pk`, so a bound on one is a bound on the other.
pub struct PredicatePushdown;

impl Pass for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate-pushdown"
    }
    fn law(&self) -> &'static str {
        "selection pushdown"
    }
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan {
        match plan {
            Plan::Filter { input, predicates } => {
                let inner = self.apply(input, catalog);
                if let Plan::Scan { table, range } = &inner {
                    if let Some(key) = catalog.table(table).map(|t| t.schema.key_name()) {
                        let mut new_range = *range;
                        let mut kept = Vec::new();
                        for p in predicates {
                            match (p.column == key, KeyRange::from_predicate(p)) {
                                (true, Some(kr)) => new_range = new_range.intersect(&kr),
                                _ => kept.push(p.clone()),
                            }
                        }
                        let scan = Plan::Scan {
                            table: table.clone(),
                            range: new_range,
                        };
                        return if kept.is_empty() {
                            scan
                        } else {
                            Plan::Filter {
                                input: Box::new(scan),
                                predicates: kept,
                            }
                        };
                    }
                }
                Plan::Filter {
                    input: Box::new(inner),
                    predicates: predicates.clone(),
                }
            }
            Plan::Join { outer, inner } => {
                let mut outer = self.apply(outer, catalog);
                let mut inner = self.apply(inner, catalog);
                // Range transfer: move the inner side's scan range onto
                // the outer scan (fk = pk on every surviving pair).
                if let Some(ir) = scan_range(&inner) {
                    if ir != KeyRange::all() {
                        if let Some(or) = scan_range_mut(&mut outer) {
                            *or = or.intersect(&ir);
                            if let Some(irm) = scan_range_mut(&mut inner) {
                                *irm = KeyRange::all();
                            }
                        }
                    }
                }
                Plan::Join {
                    outer: Box::new(outer),
                    inner: Box::new(inner),
                }
            }
            other => map_children(other, &|p| self.apply(p, catalog)),
        }
    }
}

fn scan_range(plan: &Plan) -> Option<KeyRange> {
    match plan {
        Plan::Scan { range, .. } => Some(*range),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. } => scan_range(input),
        Plan::Join { .. } => None,
    }
}

fn scan_range_mut(plan: &mut Plan) -> Option<&mut KeyRange> {
    match plan {
        Plan::Scan { range, .. } => Some(range),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. } => scan_range_mut(input),
        Plan::Join { .. } => None,
    }
}

/// Collapses nested projections, drops `Project *`, and deduplicates
/// repeated columns (output is named-tuple-shaped; a repeated name adds
/// no information but widens the result the user must download).
pub struct ProjectionPruning;

impl Pass for ProjectionPruning {
    fn name(&self) -> &'static str {
        "projection-pruning"
    }
    fn law(&self) -> &'static str {
        "projection pushdown / idempotence"
    }
    #[allow(clippy::only_used_in_recursion)] // `catalog` is fixed by the trait
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan {
        match plan {
            Plan::Project { input, list } => {
                let inner = self.apply(input, catalog);
                match list {
                    ProjectList::All => inner,
                    ProjectList::Columns(cols) => {
                        let mut dedup = Vec::new();
                        for c in cols {
                            if !dedup.contains(c) {
                                dedup.push(c.clone());
                            }
                        }
                        // Collapse Project over Project: the outer list
                        // (already resolved at lowering) wins.
                        let below = match inner {
                            Plan::Project { input: below, .. } => *below,
                            other => other,
                        };
                        Plan::Project {
                            input: Box::new(below),
                            list: ProjectList::Columns(dedup),
                        }
                    }
                }
            }
            other => map_children(other, &|p| self.apply(p, catalog)),
        }
    }
}

/// Drops DISTINCT when the projected output contains the sort key: keys
/// are unique, so no duplicates can exist and the duplicate-elimination
/// proofs of Section 4.2 are pure overhead.
pub struct DistinctElimination;

impl Pass for DistinctElimination {
    fn name(&self) -> &'static str {
        "distinct-elimination"
    }
    fn law(&self) -> &'static str {
        "distinct elimination on key-bearing output"
    }
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan {
        match plan {
            Plan::Distinct { input } => {
                let inner = self.apply(input, catalog);
                if output_includes_key(&inner, catalog) {
                    inner
                } else {
                    Plan::Distinct {
                        input: Box::new(inner),
                    }
                }
            }
            other => map_children(other, &|p| self.apply(p, catalog)),
        }
    }
}

/// Does the subtree's *requested* projection include the scanned table's
/// sort key? (No projection / `*` trivially does.)
fn output_includes_key(plan: &Plan, catalog: &Catalog) -> bool {
    let Some(key) = side_key_name(plan, catalog) else {
        return false;
    };
    fn requested(plan: &Plan) -> Option<&ProjectList> {
        match plan {
            Plan::Project { list, .. } => Some(list),
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. } => requested(input),
            Plan::Scan { .. } | Plan::Join { .. } => None,
        }
    }
    match requested(plan) {
        None | Some(ProjectList::All) => true,
        Some(ProjectList::Columns(cols)) => cols.iter().any(|c| c.column == key),
    }
}

/// Structure-preserving recursion helper.
fn map_children(plan: &Plan, f: &dyn Fn(&Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan { .. } => plan.clone(),
        Plan::Filter { input, predicates } => Plan::Filter {
            input: Box::new(f(input)),
            predicates: predicates.clone(),
        },
        Plan::Project { input, list } => Plan::Project {
            input: Box::new(f(input)),
            list: list.clone(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(f(input)),
        },
        Plan::Join { outer, inner } => Plan::Join {
            outer: Box::new(f(outer)),
            inner: Box::new(f(inner)),
        },
        Plan::Aggregate {
            input,
            func,
            column,
        } => Plan::Aggregate {
            input: Box::new(f(input)),
            func: *func,
            column: column.clone(),
        },
    }
}

/// The default pass pipeline, in application order.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(FilterMerge),
        Box::new(JoinOrder),
        Box::new(PredicatePushdown),
        Box::new(ProjectionPruning),
        Box::new(DistinctElimination),
    ]
}

/// The outcome of planning one statement.
#[derive(Clone, Debug)]
pub struct Planned {
    /// The naive lowering (full-domain scan, client-side residue).
    pub naive: PhysicalPlan,
    pub naive_cost: PlanCost,
    /// The cost-chosen plan actually sent to the server.
    pub chosen: PhysicalPlan,
    pub chosen_cost: PlanCost,
    /// The logical plan after the full pipeline (for EXPLAIN).
    pub optimized: Plan,
    /// Names of the passes contributing to the chosen candidate.
    pub passes_applied: Vec<&'static str>,
}

/// The VO-aware query planner.
#[derive(Default)]
pub struct Planner {
    pub params: CostParams,
}

impl Planner {
    pub fn new(params: CostParams) -> Self {
        Planner { params }
    }

    /// Lowers, rewrites, and prices a statement, returning both the naive
    /// and the cheapest-proof candidate.
    pub fn plan(&self, stmt: &Statement, catalog: &Catalog) -> Result<Planned, PlanError> {
        let logical = lower(stmt, catalog)?;
        let naive = physical(&logical, catalog)?;
        let naive_cost = estimate_cost(&naive.wire, catalog, &self.params);
        let mut best = naive.clone();
        let mut best_cost = naive_cost;
        let mut best_passes: Vec<&'static str> = Vec::new();
        let mut cur = logical;
        let mut applied: Vec<&'static str> = Vec::new();
        for pass in default_passes() {
            let next = pass.apply(&cur, catalog);
            if next == cur {
                continue;
            }
            cur = next;
            applied.push(pass.name());
            let phys = physical(&cur, catalog)?;
            let cost = estimate_cost(&phys.wire, catalog, &self.params);
            // `<=`: equal-cost rewrites still simplify the plan.
            if cost.score() <= best_cost.score() {
                best = phys;
                best_cost = cost;
                best_passes = applied.clone();
            }
        }
        Ok(Planned {
            naive,
            naive_cost,
            chosen: best,
            chosen_cost: best_cost,
            optimized: cur,
            passes_applied: best_passes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::plan::{CatalogTable, WirePlan};
    use crate::sql::parse;
    use adp_relation::{Column, Schema, ValueType};

    fn catalog() -> Catalog {
        let emp = Schema::new(
            vec![
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Text),
            ],
            "salary",
        );
        let grades = Schema::new(
            vec![
                Column::new("level", ValueType::Int),
                Column::new("title", ValueType::Text),
            ],
            "level",
        );
        let mut c = Catalog::new();
        c.add(CatalogTable {
            name: "emp".to_string(),
            id: 0,
            schema: emp,
            domain: Domain::new(0, 100_000),
            rows: 5_000,
            base: 2,
            fk_into: None,
        });
        c.add(CatalogTable {
            name: "grades".to_string(),
            id: 1,
            schema: grades,
            domain: Domain::new(0, 100_000),
            rows: 50,
            base: 2,
            fk_into: None,
        });
        c.declare_fk("emp", "grades");
        c
    }

    #[test]
    fn planner_pushes_range_and_beats_naive() {
        let cat = catalog();
        let stmt = parse("SELECT * FROM emp WHERE salary BETWEEN 2000 AND 2400").unwrap();
        let planned = Planner::default().plan(&stmt, &cat).unwrap();
        let WirePlan::Select { query, .. } = &planned.chosen.wire else {
            panic!()
        };
        assert_eq!(query.range, KeyRange::closed(2000, 2400));
        assert!(planned.chosen.residual.is_empty());
        assert!(planned.chosen_cost.score() < planned.naive_cost.score());
        assert!(planned.passes_applied.contains(&"predicate-pushdown"));
        // The naive plan kept the predicate client-side over a full scan.
        let WirePlan::Select { query: nq, .. } = &planned.naive.wire else {
            panic!()
        };
        assert_eq!(nq.range, KeyRange::all());
        assert_eq!(planned.naive.residual.len(), 2);
    }

    #[test]
    fn join_order_puts_declared_fk_side_outer() {
        let cat = catalog();
        // grades is listed first, but emp is the declared fk side.
        let stmt = parse(
            "SELECT emp.dept, grades.title FROM grades INNER JOIN emp ON grades.level = emp.salary \
             WHERE emp.salary BETWEEN 100 AND 200",
        )
        .unwrap();
        let planned = Planner::default().plan(&stmt, &cat).unwrap();
        let WirePlan::PkFkJoin {
            fk_table,
            pk_table,
            fk_range,
            ..
        } = &planned.chosen.wire
        else {
            panic!("expected join, got {:?}", planned.chosen.wire)
        };
        assert_eq!((*fk_table, *pk_table), (0, 1));
        assert_eq!(fk_range, &KeyRange::closed(100, 200));
        assert!(planned.passes_applied.contains(&"join-order"));
    }

    #[test]
    fn distinct_eliminated_when_key_projected() {
        let cat = catalog();
        let stmt = parse("SELECT DISTINCT salary, dept FROM emp").unwrap();
        let planned = Planner::default().plan(&stmt, &cat).unwrap();
        let WirePlan::Select { query, .. } = &planned.chosen.wire else {
            panic!()
        };
        assert!(!query.distinct, "distinct should be eliminated");
        let kept = parse("SELECT DISTINCT dept FROM emp").unwrap();
        let planned = Planner::default().plan(&kept, &cat).unwrap();
        let WirePlan::Select { query, .. } = &planned.chosen.wire else {
            panic!()
        };
        assert!(query.distinct, "distinct on non-key output must survive");
    }
}
