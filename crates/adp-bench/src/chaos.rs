//! Chaos drills: verified queries through a deterministic fault proxy.
//!
//! The load harness ([`crate::load`]) measures throughput on a healthy
//! link; this module measures **soundness under a hostile one**. A
//! seeded [`FaultPlan`] drives a [`FaultProxy`] that drops, delays,
//! duplicates, and cuts bytes between a verifying client and the
//! server, and the drill counts what the client did about it: answers
//! it verified, damaged answers it *refused* (the paper's security
//! property — a mangled VO must fail verification, never be accepted),
//! and queries it gave up on. Same seed, same chaos, byte for byte.

use crate::WorkloadSpec;
use adp_core::prelude::*;
pub use adp_faults::{DiskFault, FaultPlan, FaultProxy, ProxyStats, WireFault};
use adp_relation::{KeyRange, SelectQuery};
use adp_server::{RemoteError, RemoteVerifier, RetryPolicy, Server, ServerConfig};
use std::io;
use std::time::Duration;

/// Knobs for one drill.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Rows in the served table.
    pub rows: usize,
    /// Verified range queries to attempt through the proxy.
    pub queries: usize,
    /// Seeds the [`FaultPlan`], the query ranges, and the retry jitter.
    pub seed: u64,
    /// Connections the plan mangles before the link heals.
    pub faulty_conns: u64,
    /// Per-direction fault horizon in bytes (see
    /// [`FaultPlan::with_horizon`]).
    pub horizon: u64,
    /// Reconnect attempts per query before giving up on it.
    pub attempts_per_query: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            rows: 200,
            queries: 30,
            seed: 0xC4A05,
            faulty_conns: 4,
            horizon: 2048,
            attempts_per_query: 6,
        }
    }
}

/// What one drill proved.
#[derive(Clone, Copy, Debug)]
pub struct ChaosReport {
    /// Queries whose answer verified against the certificate.
    pub verified: u64,
    /// Answers that arrived but failed verification and were refused —
    /// damage the transport layer let through and the VO caught.
    pub refused: u64,
    /// Queries abandoned after [`ChaosConfig::attempts_per_query`]
    /// attempts (the link never yielded a verifiable answer in budget).
    pub gave_up: u64,
    /// Transport-level failures healed by reconnecting (connection cut,
    /// frame mangled beyond parsing, refused connect).
    pub transport_failures: u64,
    /// Connections the proxy accepted / faults it injected / bytes it
    /// forwarded.
    pub proxy_conns: u64,
    pub proxy_faults: u64,
    pub proxy_forwarded: u64,
}

/// Runs one drill: workload → server → proxy → verifying client.
///
/// Every count in the report is deterministic in `cfg.seed` except
/// timing-dependent fault placement (a delayed byte may land before or
/// after a read deadline), so callers should assert *invariants* —
/// `verified + gave_up == queries`, `refused` never silently accepted —
/// not exact counts.
pub fn run(cfg: &ChaosConfig) -> io::Result<ChaosReport> {
    let mut spec = WorkloadSpec::new(cfg.rows);
    spec.seed = cfg.seed;
    let (st, cert) = spec.signed(crate::bench_owner_small(), SchemeConfig::default());
    let (key_min, key_max) = (st.domain().key_min(), st.domain().key_max());
    let mut server = Server::new(ServerConfig::default());
    server.add_table(0, st);
    let handle = server.serve("127.0.0.1:0")?;

    let plan = FaultPlan::new(cfg.seed)
        .with_faulty_conns(cfg.faulty_conns)
        .with_horizon(cfg.horizon);
    let proxy = FaultProxy::start(handle.addr(), plan)?;

    let retry = RetryPolicy {
        max_retries: 2,
        base: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        seed: cfg.seed,
    };
    let connect = |attempt: u32| -> Result<RemoteVerifier, RemoteError> {
        let mut user = RemoteVerifier::connect(proxy.addr(), cert.clone(), 0)
            .map_err(|e| RemoteError::Proto(adp_server::protocol::ProtoError::Io(e)))?;
        user.client_mut()
            .set_timeout(Some(Duration::from_millis(750)))
            .map_err(|e| RemoteError::Proto(adp_server::protocol::ProtoError::Io(e)))?;
        user.client_mut().set_retry_policy(RetryPolicy {
            seed: cfg.seed ^ u64::from(attempt),
            ..retry
        });
        Ok(user)
    };

    let mut report = ChaosReport {
        verified: 0,
        refused: 0,
        gave_up: 0,
        transport_failures: 0,
        proxy_conns: 0,
        proxy_faults: 0,
        proxy_forwarded: 0,
    };
    let mut user: Option<RemoteVerifier> = None;
    let mut rng = adp_faults::Rng64::new(adp_faults::substream(cfg.seed, "queries", 0));
    let span = (key_max - key_min).max(1) as u64 + 1;
    for _ in 0..cfg.queries {
        let a = key_min + (rng.next_u64() % span) as i64;
        let b = key_min + (rng.next_u64() % span) as i64;
        let query = SelectQuery::range(KeyRange::closed(a.min(b), a.max(b)));
        let mut attempt = 0;
        loop {
            if attempt >= cfg.attempts_per_query {
                report.gave_up += 1;
                break;
            }
            let conn = match user.as_mut() {
                Some(conn) => conn,
                None => match connect(attempt) {
                    Ok(conn) => user.insert(conn),
                    Err(_) => {
                        report.transport_failures += 1;
                        attempt += 1;
                        continue;
                    }
                },
            };
            match conn.select(&query) {
                Ok(_) => {
                    report.verified += 1;
                    break;
                }
                // A damaged answer the VO refused: the security property
                // holding. The stream may be desynced — reconnect.
                Err(RemoteError::Verify(_)) => {
                    report.refused += 1;
                    user = None;
                    attempt += 1;
                }
                // Transport damage (cut, mangled, refused): heal and
                // re-ask. Never accepted, so never a soundness event.
                Err(_) => {
                    report.transport_failures += 1;
                    user = None;
                    attempt += 1;
                }
            }
        }
    }

    report.proxy_conns = proxy.stats().conns();
    report.proxy_faults = proxy.stats().faults();
    report.proxy_forwarded = proxy.stats().forwarded();
    proxy.stop();
    handle.shutdown();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean plan is a pass-through: every query verifies first try.
    #[test]
    fn clean_plan_verifies_everything() {
        let report = run(&ChaosConfig {
            rows: 50,
            queries: 8,
            seed: 0x0,
            faulty_conns: 0,
            horizon: 0,
            attempts_per_query: 3,
        })
        .unwrap();
        assert_eq!(report.verified, 8);
        assert_eq!(report.refused, 0);
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.transport_failures, 0);
        assert!(report.proxy_forwarded > 0);
    }

    /// Under chaos every query is accounted for — verified or given up,
    /// nothing silently lost — and the proxy demonstrably interfered.
    #[test]
    fn chaotic_plan_accounts_for_every_query() {
        let cfg = ChaosConfig {
            queries: 20,
            seed: 0x8A05_00FF,
            ..ChaosConfig::default()
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.verified + report.gave_up, cfg.queries as u64);
        assert!(
            report.proxy_faults > 0,
            "the plan must actually inject faults: {report:?}"
        );
        assert!(
            report.verified > 0,
            "self-healing must get some answers through: {report:?}"
        );
    }
}
