//! The event-driven publisher server: answers
//! [`QueryRequest`](crate::protocol::Frame::QueryRequest) and
//! [`BatchRequest`](crate::protocol::Frame::BatchRequest) frames against
//! its registered [`SignedTable`]s, and serves hot ranges from the VO
//! cache.
//!
//! Concurrency model (no async runtime in this environment — a hand-rolled
//! epoll readiness loop in the private `reactor` module):
//!
//! * **reactor shards** (one thread each, [`ServerConfig::shards`]) own
//!   the non-blocking listener and connection sockets: frame reassembly,
//!   bounded write queues with backpressure, idle/frame timeouts. Thread
//!   count is bounded by shards + workers, never by connection count.
//! * a shared **worker pool** runs every query and batch item (the crypto
//!   is never on a reactor thread); answers complete back to the owning
//!   shard, which writes them in request order per connection.
//!
//! The **VO cache** is an LRU keyed on `(table_id, canonical query)`: the
//! key range is normalized against the table's domain first (so `K < 100`
//! and `K ≤ 99` are one entry) and the cached value is the already-encoded
//! `(result, vo)` pair — a hit bypasses the publisher *and* the codec.
//! Hit/miss counters are exported through [`Frame::StatsRequest`].

use crate::cache::LruCache;
use crate::pool::ThreadPool;
use crate::protocol::{self, ErrorCode, Frame, StatsSnapshot};
use crate::reactor::{self, Msg, ShardHandle, WriteChunk};
use adp_core::delta;
use adp_core::owner::{Mutation, SignedTable};
use adp_core::plan::{
    compute_plan_answer, encode_plan_answer, PlanAnswer, PlanAnswerError, WirePlan,
};
use adp_core::publisher::Publisher;
use adp_core::vo::QueryVO;
use adp_core::wire::{self, Writer};
use adp_crypto::Signature;
use adp_relation::{KeyRange, Record, SelectQuery};
use adp_store::log::{encode_record, LogRecord};
use adp_store::{Store, StoreError};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, recovering from poisoning. A worker that panics while
/// holding a server lock (a publisher bug on one query, say) must not take
/// the whole service down: every subsequent request would otherwise meet a
/// `PoisonError` and panic in turn. The guarded structures stay usable
/// across such a panic — the cache and the table registry are only ever
/// mutated through operations that leave them structurally consistent — so
/// the right response is to keep serving, not to crash.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`lock_recover`] for read-locking an `RwLock`.
fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// [`lock_recover`] for write-locking an `RwLock`.
fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Tuning knobs for [`Server::serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads answering queries and batch items (clamped to ≥ 1).
    pub workers: usize,
    /// VO cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Reactor shards (I/O threads); `0` means one per available core.
    pub shards: usize,
    /// Patience for the rest of a frame once its first byte arrived.
    pub frame_timeout: Duration,
    /// Reap connections with no traffic for this long (`None` disables
    /// reaping). Reaps are counted by the `idle_reaped` stat.
    pub idle_timeout: Option<Duration>,
    /// Per-connection write-queue bound in bytes: past it the server
    /// stops reading from (and answering) the connection until the client
    /// drains responses; a client that never drains falls to the idle
    /// timeout instead of buffering unboundedly.
    pub write_queue_limit: usize,
    /// Largest delta push (encoded frame, in bytes) the server will ship
    /// to a range subscriber. A delta exceeding the effective bound —
    /// `min(max_push_bytes, MAX_PAYLOAD)` — terminates the subscription
    /// with a `ResyncRequired` push instead of being sent. Defaults to
    /// the protocol frame limit; tests lower it to exercise the resync
    /// path with small data.
    pub max_push_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            cache_capacity: 1024,
            shards: 0,
            frame_timeout: Duration::from_secs(30),
            idle_timeout: Some(Duration::from_secs(60)),
            write_queue_limit: 8 << 20,
            max_push_bytes: crate::protocol::MAX_PAYLOAD as usize,
        }
    }
}

/// Server counters and gauges (lock-free; read via
/// [`ServerHandle::stats`] or the wire's [`Frame::StatsRequest`]).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) invalidations: AtomicU64,
    /// Gauge: connections currently registered with a reactor shard.
    pub(crate) open_connections: AtomicU64,
    /// Gauge: bytes queued across all per-connection write queues.
    pub(crate) queue_depth: AtomicU64,
    pub(crate) idle_reaped: AtomicU64,
    pub(crate) errors: AtomicU64,
    /// Gauge: live subscription-registry entries (range subscriptions
    /// plus log followers).
    pub(crate) subscriptions: AtomicU64,
    /// `DeltaVO` frames pushed to subscribers (the initial snapshot
    /// answering a `Subscribe` counts; unsubscribe acks do not).
    pub(crate) deltas_pushed: AtomicU64,
    /// Reconnections observed: `FollowLog` handshakes resuming from a
    /// `have` cursor, plus `Subscribe` registrations re-using a
    /// `(table_id, sub_id)` this server already saw (a self-healing
    /// subscriber re-subscribing after a drop or a resync).
    pub(crate) reconnects: AtomicU64,
    /// `ResyncRequired` frames pushed (subscriptions terminated because
    /// their delta could not be shipped).
    pub(crate) resyncs: AtomicU64,
    /// Connections closed by graceful drain.
    pub(crate) drains: AtomicU64,
    /// Reactor loop iterations across all shards. Not on the wire — a
    /// diagnostic proving idle connections cost zero steady-state wakeups
    /// (exported via [`ServerHandle::reactor_wakeups`]).
    pub(crate) wakeups: AtomicU64,
}

impl ServerStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, cache_entries: u64) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_entries,
            invalidations: self.invalidations.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            subscriptions: self.subscriptions.load(Ordering::Relaxed),
            deltas_pushed: self.deltas_pushed.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            resyncs: self.resyncs.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
        }
    }
}

/// A response-tampering hook: receives the honest answer and returns what
/// actually goes on the wire.
///
/// This exists for *fault injection*: integration tests mount the
/// Section 3.2 cheating strategies here to prove the remote verifier
/// rejects every forgery arriving through a real socket (see
/// `tests/remote_attack_matrix.rs`). A tampering server bypasses the VO
/// cache so forged and honest answers never mix.
pub type TamperFn = dyn for<'a> Fn(&Publisher<'a>, &SelectQuery, Vec<Record>, QueryVO) -> (Vec<Record>, QueryVO)
    + Send
    + Sync;

/// A response-tampering hook for the planned-query path: receives the
/// plan and the honest [`PlanAnswer`] and returns what actually goes on
/// the wire. Same fault-injection role as [`TamperFn`], but for the v6
/// `PlannedQuery` frames (join and narrowed-scan shapes the legacy hook
/// never sees). A server with this hook mounted bypasses the VO cache on
/// the planned path.
pub type PlannedTamperFn = dyn Fn(&WirePlan, PlanAnswer) -> PlanAnswer + Send + Sync;

/// Encoded `(result, vo)` pair as cached and written to sockets.
pub(crate) type AnswerBlob = Arc<(Vec<u8>, Vec<u8>)>;

/// A registered table: the currently-served snapshot plus its epoch,
/// bumped by every applied update. Cached answers remember the epoch they
/// were computed at; an epoch mismatch on lookup drops the entry lazily.
struct TableSlot {
    st: Arc<SignedTable>,
    epoch: u64,
}

/// A cached answer, valid only while its table stays at `epoch`.
struct CachedAnswer {
    epoch: u64,
    blob: AnswerBlob,
}

/// Why [`ServerHandle::apply_update`] refused or failed.
#[derive(Debug)]
pub enum UpdateError {
    /// No table is registered under this id.
    UnknownTable(u32),
    /// The table was registered with [`Server::add_table`] (no backing
    /// store), so there is nothing durable to apply updates to.
    NotStoreBacked(u32),
    /// The store rejected the batch (verification failure, corrupt or
    /// unwritable log, …). The served table is unchanged.
    Store(StoreError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownTable(id) => write!(f, "no table with id {id}"),
            UpdateError::NotStoreBacked(id) => {
                write!(f, "table {id} is not store-backed; updates need a store")
            }
            UpdateError::Store(e) => write!(f, "store rejected the update: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<StoreError> for UpdateError {
    fn from(e: StoreError) -> Self {
        UpdateError::Store(e)
    }
}

/// What a subscription-registry entry delivers.
pub(crate) enum SubKind {
    /// A mirror publisher receiving every applied batch as a `LogSegment`.
    Follower,
    /// A client receiving `DeltaVO` pushes for the closed key range
    /// `[lo, hi]` (normalized against the table's domain at registration).
    Range { sub_id: u32, lo: i64, hi: i64 },
}

/// One live subscription: which connection to push to and what it wants.
/// `(shard, token)` identifies the connection — tokens are per-shard and
/// never reused, so a stale entry can at worst push to nobody.
pub(crate) struct SubEntry {
    pub(crate) table_id: u32,
    pub(crate) shard: Arc<ShardHandle>,
    pub(crate) token: u64,
    pub(crate) kind: SubKind,
}

/// Everything reactor shards and pool workers share.
pub(crate) struct Inner {
    tables: RwLock<HashMap<u32, TableSlot>>,
    /// Backing stores for tables opened with [`Server::open_store`]
    /// (absent for purely in-memory tables).
    stores: Mutex<HashMap<u32, Store>>,
    cache: Option<Mutex<LruCache<Vec<u8>, CachedAnswer>>>,
    /// The subscription registry. Lock ordering: `stores` → `tables` →
    /// `subs`, and `tables` is never *held* while acquiring `subs`
    /// (registration jobs take `subs` first, then read `tables`, so the
    /// update path must release `tables` before fanning out). Every push
    /// to a subscriber — including the registration response itself — is
    /// enqueued while holding `subs`, which is what makes the per-
    /// connection wire order equal epoch order.
    pub(crate) subs: Mutex<Vec<SubEntry>>,
    /// Every `(table_id, sub_id)` ever registered, kept after the entry
    /// dies so a re-registration is recognizable as a reconnect (the
    /// `reconnects` stat). Grows with distinct ids, not connections.
    seen_subs: Mutex<std::collections::HashSet<(u32, u32)>>,
    pub(crate) stats: ServerStats,
    tamper: Option<Box<TamperFn>>,
    planned_tamper: Option<Box<PlannedTamperFn>>,
    /// [`ServerConfig::max_push_bytes`], checked on the fan-out path.
    max_push_bytes: usize,
}

impl Inner {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let cache_entries = self
            .cache
            .as_ref()
            .map_or(0, |c| lock_recover(c).len() as u64);
        self.stats.snapshot(cache_entries)
    }

    /// Whether the range subscription `sub_id` on `(shard, token)` is
    /// still registered — checked at push *delivery* so no delta lands on
    /// the wire after an unsubscribe ack.
    pub(crate) fn sub_alive(&self, shard: &Arc<ShardHandle>, token: u64, sub_id: u32) -> bool {
        lock_recover(&self.subs).iter().any(|e| {
            e.token == token
                && Arc::ptr_eq(&e.shard, shard)
                && matches!(e.kind, SubKind::Range { sub_id: s, .. } if s == sub_id)
        })
    }

    /// Removes one range subscription (the `Unsubscribe` path). Returns
    /// whether an entry was actually removed.
    pub(crate) fn remove_range_sub(
        &self,
        shard: &Arc<ShardHandle>,
        token: u64,
        sub_id: u32,
    ) -> bool {
        let mut subs = lock_recover(&self.subs);
        let before = subs.len();
        subs.retain(|e| {
            !(e.token == token
                && Arc::ptr_eq(&e.shard, shard)
                && matches!(e.kind, SubKind::Range { sub_id: s, .. } if s == sub_id))
        });
        let removed = before != subs.len();
        if removed {
            self.stats.subscriptions.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Drops every registry entry belonging to `(shard, token)` — called
    /// when the connection closes (drained, reaped, or broken).
    pub(crate) fn purge_conn_subs(&self, shard: &Arc<ShardHandle>, token: u64) {
        let mut subs = lock_recover(&self.subs);
        let before = subs.len();
        subs.retain(|e| !(e.token == token && Arc::ptr_eq(&e.shard, shard)));
        let removed = (before - subs.len()) as u64;
        if removed > 0 {
            self.stats
                .subscriptions
                .fetch_sub(removed, Ordering::Relaxed);
        }
    }
}

/// Cache key for the legacy query path: `(table_id, canonical query)`.
/// The range is replaced by its domain-normalized closed form so
/// syntactically different ranges with identical semantics share an
/// entry; trivially-empty ranges collapse to one key per (filters,
/// projection, distinct) combination.
///
/// The leading kind byte (`0x01` legacy, `0x02` planned) keeps the two
/// key families disjoint: without it, a planned `Select` over the same
/// canonical range could collide with a legacy entry even though the two
/// responses use different frame encodings.
fn cache_key(table_id: u32, st: &SignedTable, query: &SelectQuery) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(0x01);
    w.u32(table_id);
    let canonical = match st.domain().normalize(&query.range) {
        Some(bounds) => {
            w.u8(1);
            SelectQuery {
                range: KeyRange::closed(bounds.alpha, bounds.beta),
                ..query.clone()
            }
        }
        None => {
            w.u8(0);
            SelectQuery {
                range: KeyRange::all(),
                ..query.clone()
            }
        }
    };
    w.bytes(&wire::encode_query(&canonical));
    w.into_bytes()
}

/// Cache key for the planned-query path: kind byte `0x02`, the epoch of
/// every table the plan touches, then the plan's canonical fingerprint.
/// Two *distinct* plans over the same key range (different filters,
/// projections, DISTINCT, or shape) therefore never share an entry —
/// their fingerprints differ — and entries from a superseded epoch can
/// never be returned: the key itself moves on with the epoch, so a stale
/// entry simply ages out of the LRU.
fn planned_cache_key(plan: &WirePlan, slots: &[(u32, Arc<SignedTable>, u64)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(0x02);
    w.u32(slots.len() as u32);
    for (id, _, epoch) in slots {
        w.u32(*id);
        w.u64(*epoch);
    }
    w.bytes(&plan.fingerprint());
    w.into_bytes()
}

/// Answers one planned query (the v6 `PlannedQuery` frame): resolves
/// every table the plan references, consults the VO cache under the
/// plan-fingerprint key, computes the (select or pk-fk join) answer, and
/// encodes it with [`encode_plan_answer`]. Mirrors [`answer`], with the
/// planned tamper hook in place of the legacy one.
pub(crate) fn answer_planned(
    inner: &Inner,
    plan: &WirePlan,
) -> Result<AnswerBlob, (ErrorCode, String)> {
    let ids: Vec<u32> = match plan {
        WirePlan::Select { table_id, .. } => vec![*table_id],
        WirePlan::PkFkJoin {
            fk_table, pk_table, ..
        } => vec![*fk_table, *pk_table],
    };
    let slots: Vec<(u32, Arc<SignedTable>, u64)> = {
        let tables = read_recover(&inner.tables);
        let mut slots = Vec::with_capacity(ids.len());
        for id in ids {
            let slot = tables
                .get(&id)
                .ok_or_else(|| (ErrorCode::UnknownTable, format!("no table with id {id}")))?;
            slots.push((id, Arc::clone(&slot.st), slot.epoch));
        }
        slots
    };
    let cache = inner
        .cache
        .as_ref()
        .filter(|_| inner.tamper.is_none() && inner.planned_tamper.is_none());
    let key = cache.map(|_| planned_cache_key(plan, &slots));
    if let (Some(cache), Some(key)) = (cache, &key) {
        // Epochs live in the key, so any hit is current by construction.
        if let Some(hit) = lock_recover(cache).get(key) {
            ServerStats::bump(&inner.stats.cache_hits);
            ServerStats::bump(&inner.stats.queries);
            return Ok(Arc::clone(&hit.blob));
        }
        ServerStats::bump(&inner.stats.cache_misses);
    }
    let resolve = |id: u32| {
        slots
            .iter()
            .find(|(i, _, _)| *i == id)
            .map(|(_, st, _)| &**st)
    };
    let answer = compute_plan_answer(plan, resolve).map_err(|e| match e {
        PlanAnswerError::UnknownTable(id) => {
            (ErrorCode::UnknownTable, format!("no table with id {id}"))
        }
        PlanAnswerError::Publish(e) => (ErrorCode::BadQuery, e.to_string()),
    })?;
    let answer = match &inner.planned_tamper {
        Some(tamper) => tamper(plan, answer),
        None => answer,
    };
    let (result, vo) = encode_plan_answer(&answer);
    let blob: AnswerBlob = Arc::new((result, vo));
    let framed_len = blob.0.len() as u64 + blob.1.len() as u64 + 8;
    if framed_len > crate::protocol::MAX_PAYLOAD as u64 {
        return Err((
            ErrorCode::Internal,
            format!("answer of {framed_len} bytes exceeds the frame payload cap"),
        ));
    }
    if let (Some(key), Some(cache)) = (key, cache) {
        lock_recover(cache).insert(
            key,
            CachedAnswer {
                // Unused on this path: freshness is part of the key.
                epoch: 0,
                blob: Arc::clone(&blob),
            },
        );
    }
    ServerStats::bump(&inner.stats.queries);
    Ok(blob)
}

/// Answers one query, consulting the VO cache unless a tamper hook is
/// mounted. Cached answers carry the table epoch they were computed at;
/// a stale entry (its table was updated since) is dropped lazily here and
/// counted as an invalidation.
pub(crate) fn answer(
    inner: &Inner,
    table_id: u32,
    query: &SelectQuery,
) -> Result<AnswerBlob, (ErrorCode, String)> {
    let (st, epoch) = {
        let tables = read_recover(&inner.tables);
        let slot = tables.get(&table_id).ok_or_else(|| {
            (
                ErrorCode::UnknownTable,
                format!("no table with id {table_id}"),
            )
        })?;
        (Arc::clone(&slot.st), slot.epoch)
    };
    let st = &*st;
    // The cache is consulted iff it is configured and no tamper hook is
    // mounted (forged and honest answers must never mix).
    let cache = inner.cache.as_ref().filter(|_| inner.tamper.is_none());
    let key = cache.map(|_| cache_key(table_id, st, query));
    if let (Some(cache), Some(key)) = (cache, &key) {
        let mut cache = lock_recover(cache);
        match cache.get(key) {
            Some(hit) if hit.epoch == epoch => {
                ServerStats::bump(&inner.stats.cache_hits);
                ServerStats::bump(&inner.stats.queries);
                return Ok(Arc::clone(&hit.blob));
            }
            Some(_) => {
                // Stale: the table moved on since this was cached.
                cache.remove(key);
                ServerStats::bump(&inner.stats.invalidations);
                ServerStats::bump(&inner.stats.cache_misses);
            }
            None => ServerStats::bump(&inner.stats.cache_misses),
        }
    }
    let publisher = Publisher::new(st);
    let (result, vo) = publisher
        .answer_select(query)
        .map_err(|e| (ErrorCode::BadQuery, e.to_string()))?;
    let (result, vo) = match &inner.tamper {
        Some(tamper) => tamper(&publisher, query, result, vo),
        None => (result, vo),
    };
    let blob: AnswerBlob = Arc::new((wire::encode_records(&result), wire::encode_vo(&vo)));
    // An answer that cannot fit one frame must not reach the write path
    // (write_frame would error and desync nothing, but the client deserves
    // a per-query error instead of a dropped connection).
    let framed_len = blob.0.len() as u64 + blob.1.len() as u64 + 8;
    if framed_len > crate::protocol::MAX_PAYLOAD as u64 {
        return Err((
            ErrorCode::Internal,
            format!("answer of {framed_len} bytes exceeds the frame payload cap"),
        ));
    }
    if let (Some(key), Some(cache)) = (key, cache) {
        // If the table was updated while we computed, the recorded epoch
        // is already stale and the next lookup will drop the entry.
        lock_recover(cache).insert(
            key,
            CachedAnswer {
                epoch,
                blob: Arc::clone(&blob),
            },
        );
    }
    ServerStats::bump(&inner.stats.queries);
    Ok(blob)
}

/// A publisher server under construction: register tables, then
/// [`Server::serve`].
///
/// ```no_run
/// use adp_server::{Server, ServerConfig};
/// # fn signed_table() -> adp_core::owner::SignedTable { unimplemented!() }
/// let mut server = Server::new(ServerConfig::default());
/// server.add_table(0, signed_table());
/// let handle = server.serve("127.0.0.1:0").unwrap();
/// println!("serving on {}", handle.addr());
/// handle.shutdown();
/// ```
pub struct Server {
    config: ServerConfig,
    tables: HashMap<u32, TableSlot>,
    stores: HashMap<u32, Store>,
    tamper: Option<Box<TamperFn>>,
    planned_tamper: Option<Box<PlannedTamperFn>>,
}

impl Server {
    /// Creates a server with the given configuration and no tables.
    pub fn new(config: ServerConfig) -> Self {
        Server {
            config,
            tables: HashMap::new(),
            stores: HashMap::new(),
            tamper: None,
            planned_tamper: None,
        }
    }

    /// Registers a signed table under `table_id` (replacing any previous
    /// registration of that id).
    pub fn add_table(&mut self, table_id: u32, st: SignedTable) -> &mut Self {
        self.add_shared_table(table_id, Arc::new(st))
    }

    /// Registers an already-shared signed table under `table_id`. Warms the
    /// owner key's Montgomery context so the first answer (which aggregates
    /// signatures mod `n`) doesn't pay the one-time `R² mod n` setup on a
    /// client-visible request.
    pub fn add_shared_table(&mut self, table_id: u32, st: Arc<SignedTable>) -> &mut Self {
        st.public_key().precompute();
        self.stores.remove(&table_id);
        self.tables.insert(table_id, TableSlot { st, epoch: 0 });
        self
    }

    /// Opens an `adp-store` directory, audits it against the owner's
    /// public key (a publisher must not serve data it cannot prove —
    /// `O(n)` signature verifications, refused with
    /// [`StoreError::AuditFailed`]), and registers its table under
    /// `table_id`. Store-backed tables accept live updates through
    /// [`ServerHandle::apply_update`]: each applied batch is verified,
    /// appended to the store's update log, and atomically swapped in with
    /// a bumped epoch (invalidating cached VOs lazily).
    pub fn open_store(
        &mut self,
        table_id: u32,
        dir: impl AsRef<Path>,
    ) -> Result<&mut Self, StoreError> {
        let store = Store::open(dir)?;
        if !store.audit() {
            return Err(StoreError::AuditFailed);
        }
        Ok(self.add_store(table_id, store))
    }

    /// Registers an already-opened store under `table_id` (the
    /// [`Server::open_store`] workhorse; useful when the caller audited or
    /// inspected the store first).
    pub fn add_store(&mut self, table_id: u32, store: Store) -> &mut Self {
        store.table().public_key().precompute();
        self.tables.insert(
            table_id,
            TableSlot {
                st: store.table_arc(),
                epoch: store.next_seq(),
            },
        );
        self.stores.insert(table_id, store);
        self
    }

    /// Mounts a fault-injection hook applied to every answer before it is
    /// encoded (see [`TamperFn`]); disables the VO cache.
    pub fn set_tamper(
        &mut self,
        tamper: impl for<'a> Fn(&Publisher<'a>, &SelectQuery, Vec<Record>, QueryVO) -> (Vec<Record>, QueryVO)
            + Send
            + Sync
            + 'static,
    ) -> &mut Self {
        self.tamper = Some(Box::new(tamper));
        self
    }

    /// Mounts a fault-injection hook on the planned-query path (see
    /// [`PlannedTamperFn`]); disables the VO cache for planned answers.
    pub fn set_tamper_planned(
        &mut self,
        tamper: impl Fn(&WirePlan, PlanAnswer) -> PlanAnswer + Send + Sync + 'static,
    ) -> &mut Self {
        self.planned_tamper = Some(Box::new(tamper));
        self
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// in background threads: the reactor shards plus the worker pool —
    /// thread count never grows with connection count. The returned
    /// handle owns the server: dropping it shuts everything down.
    pub fn serve(self, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            tables: RwLock::new(self.tables),
            stores: Mutex::new(self.stores),
            cache: (self.config.cache_capacity > 0)
                .then(|| Mutex::new(LruCache::new(self.config.cache_capacity))),
            subs: Mutex::new(Vec::new()),
            seen_subs: Mutex::new(std::collections::HashSet::new()),
            stats: ServerStats::default(),
            tamper: self.tamper,
            planned_tamper: self.planned_tamper,
            max_push_bytes: self.config.max_push_bytes,
        });
        let pool = Arc::new(ThreadPool::new(self.config.workers));
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let nshards = if self.config.shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.shards
        };
        let (shards, shard_threads) = reactor::spawn_shards(
            listener,
            nshards,
            Arc::clone(&inner),
            Arc::clone(&pool),
            Arc::clone(&shutdown),
            Arc::clone(&drain),
            self.config.clone(),
        )?;
        Ok(ServerHandle {
            addr,
            inner,
            shutdown,
            drain,
            shards,
            shard_threads,
            _pool: pool,
        })
    }
}

pub(crate) type BatchAnswer = Result<AnswerBlob, (ErrorCode, String)>;

/// Encodes a batch response, enforcing the frame payload cap on the
/// *aggregate*: items are answered in order until the budget runs out,
/// and any item that would overflow the frame is downgraded to a per-item
/// error — the client gets an explained partial failure instead of a
/// dropped connection. (Each item is individually bounded by `answer`,
/// but N individually-legal answers can still sum past the cap.)
pub(crate) fn encode_batch_frame(inner: &Inner, answers: &[BatchAnswer]) -> Vec<u8> {
    const OVERFLOW_MSG: &str = "batch response exceeds the frame payload cap";
    // Every item is pre-reserved one error-sized slot (error messages are
    // short; 256 bytes is generous and 65536 items × 256 B ≪ the cap), so
    // downgrades can never themselves overflow. Ok blobs then draw their
    // extra size from what remains, in request order.
    const ERR_SLOT: u64 = 256;
    let mut budget = (crate::protocol::MAX_PAYLOAD as u64 - 4) // item-count field
        .saturating_sub(ERR_SLOT * answers.len() as u64);
    let refs: Vec<crate::protocol::BatchItemRef<'_>> = answers
        .iter()
        .map(|item| match item {
            Ok(blob) => {
                let cost = 1 + 4 + blob.0.len() as u64 + 4 + blob.1.len() as u64;
                match cost.checked_sub(ERR_SLOT).filter(|extra| *extra <= budget) {
                    Some(extra) => {
                        budget -= extra;
                        Ok((blob.0.as_slice(), blob.1.as_slice()))
                    }
                    None if cost <= ERR_SLOT => Ok((blob.0.as_slice(), blob.1.as_slice())),
                    None => {
                        ServerStats::bump(&inner.stats.errors);
                        Err((ErrorCode::Internal, OVERFLOW_MSG))
                    }
                }
            }
            Err((code, message)) => Err((*code, message.as_str())),
        })
        .collect();
    let mut out = Vec::new();
    crate::protocol::write_batch_response(&mut out, &refs).expect("writing to a Vec cannot fail");
    out
}

/// Encodes a [`Frame::Error`] into one write chunk.
fn error_chunks(inner: &Inner, code: ErrorCode, message: String) -> Vec<WriteChunk> {
    ServerStats::bump(&inner.stats.errors);
    vec![WriteChunk::owned(protocol::encode_frame(&Frame::Error {
        code,
        message,
    }))]
}

/// Pool job for a [`Frame::Subscribe`]: validates the query (pure key
/// range only), registers the subscription, and completes the request
/// with an initial [`Frame::DeltaVo`] whose single piece proves the whole
/// subscribed range at the current epoch.
///
/// Registration and the initial response happen under the `subs` lock, so
/// relative to the update path's fan-out (which also pushes under `subs`)
/// the subscriber's wire sees the initial snapshot strictly before any
/// delta with a later epoch, and never misses an epoch in between.
pub(crate) fn subscribe_job(
    inner: &Inner,
    shard: &Arc<ShardHandle>,
    token: u64,
    sub_id: u32,
    table_id: u32,
    query: &SelectQuery,
) {
    let complete = |chunks| shard.push(Msg::Complete(token, chunks));
    if !query.filters.is_empty()
        || query.projection != adp_relation::Projection::All
        || query.distinct
    {
        return complete(error_chunks(
            inner,
            ErrorCode::BadQuery,
            "subscriptions take a pure key-range query (no filters, projection, or DISTINCT)"
                .into(),
        ));
    }
    let mut subs = lock_recover(&inner.subs);
    if subs.iter().any(|e| {
        e.token == token
            && Arc::ptr_eq(&e.shard, shard)
            && matches!(e.kind, SubKind::Range { sub_id: s, .. } if s == sub_id)
    }) {
        drop(subs);
        return complete(error_chunks(
            inner,
            ErrorCode::BadQuery,
            format!("subscription id {sub_id} is already registered on this connection"),
        ));
    }
    let (st, epoch) = {
        let tables = read_recover(&inner.tables);
        match tables.get(&table_id) {
            Some(slot) => (Arc::clone(&slot.st), slot.epoch),
            None => {
                drop(tables);
                drop(subs);
                return complete(error_chunks(
                    inner,
                    ErrorCode::UnknownTable,
                    format!("no table with id {table_id}"),
                ));
            }
        }
    };
    let Some(bounds) = st.domain().normalize(&query.range) else {
        drop(subs);
        return complete(error_chunks(
            inner,
            ErrorCode::BadQuery,
            "subscribed range is empty under the table's domain".into(),
        ));
    };
    let (lo, hi) = (bounds.alpha, bounds.beta);
    // The registration response: one self-contained piece proving the
    // whole subscribed range right now. Deltas only refresh what later
    // batches dirty, so this is the subscriber's baseline.
    let piece = match delta::build_delta_pieces(&st, &[(lo, hi)], lo, hi) {
        Ok(pieces) => pieces,
        Err(e) => {
            drop(subs);
            return complete(error_chunks(inner, ErrorCode::Internal, e.to_string()));
        }
    };
    let pieces = piece
        .into_iter()
        .map(|p| protocol::DeltaPiece {
            lo: p.lo,
            hi: p.hi,
            result: wire::encode_records(&p.records),
            vo: wire::encode_vo(&p.vo),
        })
        .collect();
    let mut buf = Vec::new();
    if let Err(e) = protocol::write_frame(
        &mut buf,
        &Frame::DeltaVo {
            sub_id,
            epoch,
            pieces,
        },
    ) {
        drop(subs);
        return complete(error_chunks(inner, ErrorCode::Internal, e.to_string()));
    }
    subs.push(SubEntry {
        table_id,
        shard: Arc::clone(shard),
        token,
        kind: SubKind::Range { sub_id, lo, hi },
    });
    if !lock_recover(&inner.seen_subs).insert((table_id, sub_id)) {
        ServerStats::bump(&inner.stats.reconnects);
    }
    inner.stats.subscriptions.fetch_add(1, Ordering::Relaxed);
    ServerStats::bump(&inner.stats.deltas_pushed);
    complete(vec![WriteChunk::owned(buf)]);
}

/// Pool job for a [`Frame::FollowLog`]: answers the handshake with either
/// the backlog of signed log records (resume) or a bootstrap snapshot,
/// and registers the connection as a [`SubKind::Follower`] so every batch
/// applied from here on is shipped to it as a `LogSegment`.
///
/// The `stores` lock is held across reading the backlog *and* registering
/// the entry: [`ServerHandle::apply_update`] holds `stores` for the whole
/// apply-plus-fan-out, so no batch can land between the backlog we send
/// and the first live segment the follower receives.
pub(crate) fn follow_job(
    inner: &Inner,
    shard: &Arc<ShardHandle>,
    token: u64,
    table_id: u32,
    have: Option<u64>,
) {
    let complete = |chunks| shard.push(Msg::Complete(token, chunks));
    if have.is_some() {
        // A resume cursor means this follower held (part of) the log
        // before: it is reconnecting, not bootstrapping.
        ServerStats::bump(&inner.stats.reconnects);
    }
    let stores = lock_recover(&inner.stores);
    let Some(store) = stores.get(&table_id) else {
        drop(stores);
        let known = read_recover(&inner.tables).contains_key(&table_id);
        let (code, msg) = if known {
            (
                ErrorCode::BadQuery,
                format!("table {table_id} is not store-backed; nothing to follow"),
            )
        } else {
            (
                ErrorCode::UnknownTable,
                format!("no table with id {table_id}"),
            )
        };
        return complete(error_chunks(inner, code, msg));
    };
    let response = match have {
        None => Frame::Snapshot {
            table_id,
            snapshot: store.snapshot_bytes(),
        },
        Some(h) if h > store.next_seq() => {
            let msg = format!(
                "resume point {h} is ahead of the log (next_seq {})",
                store.next_seq()
            );
            drop(stores);
            return complete(error_chunks(inner, ErrorCode::BadQuery, msg));
        }
        Some(h) => match store.log_records_from(h) {
            // Backlog available from `h` (possibly empty: fully caught up).
            Ok(Some(records)) => Frame::LogSegment { table_id, records },
            // `h` predates the compaction horizon: re-bootstrap.
            Ok(None) => Frame::Snapshot {
                table_id,
                snapshot: store.snapshot_bytes(),
            },
            Err(e) => {
                drop(stores);
                return complete(error_chunks(inner, ErrorCode::Internal, e.to_string()));
            }
        },
    };
    let mut buf = Vec::new();
    if let Err(e) = protocol::write_frame(&mut buf, &response) {
        drop(stores);
        return complete(error_chunks(inner, ErrorCode::Internal, e.to_string()));
    }
    {
        let mut subs = lock_recover(&inner.subs);
        subs.push(SubEntry {
            table_id,
            shard: Arc::clone(shard),
            token,
            kind: SubKind::Follower,
        });
        inner.stats.subscriptions.fetch_add(1, Ordering::Relaxed);
        complete(vec![WriteChunk::owned(buf)]);
    }
    drop(stores);
}

/// Pushes one applied batch to every subscription of `table_id`:
/// followers get the signed log record as a `LogSegment`; range
/// subscribers get a [`Frame::DeltaVo`] with one self-contained proof per
/// dirty interval intersecting their range (none → no push). Called from
/// [`ServerHandle::apply_update`] with `stores` held and `tables`
/// released; takes `subs` itself.
pub(crate) fn fan_out(
    inner: &Inner,
    table_id: u32,
    seq: u64,
    epoch: u64,
    fresh: &SignedTable,
    ops: &[Mutation],
    resigned: &[(u32, Signature)],
) {
    let mut subs = lock_recover(&inner.subs);
    let has_follower = subs
        .iter()
        .any(|e| e.table_id == table_id && matches!(e.kind, SubKind::Follower));
    let has_range = subs
        .iter()
        .any(|e| e.table_id == table_id && matches!(e.kind, SubKind::Range { .. }));
    if !has_follower && !has_range {
        return;
    }
    // One encoded LogSegment serves every follower.
    let segment = has_follower
        .then(|| {
            let records = encode_record(&LogRecord {
                seq,
                ops: ops.to_vec(),
                resigned: resigned.to_vec(),
            });
            let mut buf = Vec::new();
            protocol::write_frame(&mut buf, &Frame::LogSegment { table_id, records })
                .map(|()| buf)
                .map_err(|_| ServerStats::bump(&inner.stats.errors))
                .ok()
        })
        .flatten();
    let intervals = if has_range {
        delta::dirty_intervals(fresh, resigned)
    } else {
        Vec::new()
    };
    // Subscriptions terminated this fan-out (their delta could not be
    // shipped): removed from the registry after the loop.
    let mut resynced: Vec<(Arc<ShardHandle>, u64, u32)> = Vec::new();
    for entry in subs.iter() {
        if entry.table_id != table_id {
            continue;
        }
        match entry.kind {
            SubKind::Follower => {
                if let Some(frame) = &segment {
                    entry.shard.push(Msg::Push {
                        token: entry.token,
                        sub_id: None,
                        chunks: vec![WriteChunk::owned(frame.clone())],
                    });
                }
            }
            SubKind::Range { sub_id, lo, hi } => {
                let pieces = match delta::build_delta_pieces(fresh, &intervals, lo, hi) {
                    Ok(pieces) => pieces,
                    Err(_) => {
                        ServerStats::bump(&inner.stats.errors);
                        continue;
                    }
                };
                if pieces.is_empty() {
                    continue;
                }
                let pieces = pieces
                    .into_iter()
                    .map(|p| protocol::DeltaPiece {
                        lo: p.lo,
                        hi: p.hi,
                        result: wire::encode_records(&p.records),
                        vo: wire::encode_vo(&p.vo),
                    })
                    .collect();
                let mut buf = Vec::new();
                let shipped = protocol::write_frame(
                    &mut buf,
                    &Frame::DeltaVo {
                        sub_id,
                        epoch,
                        pieces,
                    },
                )
                .is_ok()
                    && buf.len() <= inner.max_push_bytes;
                if shipped {
                    ServerStats::bump(&inner.stats.deltas_pushed);
                    entry.shard.push(Msg::Push {
                        token: entry.token,
                        sub_id: Some(sub_id),
                        chunks: vec![WriteChunk::owned(buf)],
                    });
                } else {
                    // A delta too large for one frame (or past the
                    // configured push bound) cannot be shipped — it is
                    // not split. Silently skipping it would leave the
                    // subscriber's mirror stale with no signal, so the
                    // subscription dies loudly instead: the client gets
                    // a `ResyncRequired` push and must re-subscribe for
                    // a fresh verified baseline.
                    ServerStats::bump(&inner.stats.errors);
                    ServerStats::bump(&inner.stats.resyncs);
                    let mut buf = Vec::new();
                    if protocol::write_frame(&mut buf, &Frame::ResyncRequired { sub_id, epoch })
                        .is_ok()
                    {
                        // `sub_id: None`: the entry is being removed,
                        // so the delivery-time liveness check for
                        // range pushes would drop this frame.
                        entry.shard.push(Msg::Push {
                            token: entry.token,
                            sub_id: None,
                            chunks: vec![WriteChunk::owned(buf)],
                        });
                    }
                    resynced.push((Arc::clone(&entry.shard), entry.token, sub_id));
                }
            }
        }
    }
    if !resynced.is_empty() {
        subs.retain(|e| {
            !resynced.iter().any(|(shard, token, sid)| {
                e.token == *token
                    && Arc::ptr_eq(&e.shard, shard)
                    && matches!(e.kind, SubKind::Range { sub_id: s, .. } if s == *sid)
            })
        });
        inner
            .stats
            .subscriptions
            .fetch_sub(resynced.len() as u64, Ordering::Relaxed);
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) wakes every reactor shard, which closes
/// its connections and exits; the worker pool then drains on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    shards: Vec<Arc<ShardHandle>>,
    shard_threads: Vec<JoinHandle<()>>,
    /// Kept so the pool outlives the shards: in-flight worker jobs may
    /// still complete (harmlessly) into a shard's queue during shutdown.
    _pool: Arc<ThreadPool>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server counters (same numbers the wire's
    /// `StatsRequest` reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.snapshot()
    }

    /// Total reactor loop iterations across all shards since start. A
    /// diagnostic, not a wire stat: idle connections park in `epoll_wait`
    /// with their deadlines in a timer heap, so a server with only idle
    /// connections shows **zero** growth here (the old thread-per-
    /// connection core woke every connection twice a second).
    pub fn reactor_wakeups(&self) -> u64 {
        self.inner.stats.wakeups.load(Ordering::Relaxed)
    }

    /// The current epoch of a served table (bumps with every applied
    /// update; cached answers from older epochs are dropped on lookup).
    pub fn table_epoch(&self, table_id: u32) -> Option<u64> {
        read_recover(&self.inner.tables)
            .get(&table_id)
            .map(|slot| slot.epoch)
    }

    /// Applies an owner-produced update batch to a store-backed table
    /// **while serving**: the batch (canonical `ops` plus the `O(k)`
    /// re-signed signatures, exactly as `Owner::apply_batch` reported
    /// them) is verified and appended to the store's update log, then the
    /// new table is swapped in atomically and the table's epoch bumped —
    /// in-flight queries keep the old snapshot, later ones see the new
    /// one, and stale VO-cache entries are dropped lazily on lookup.
    ///
    /// After the swap the batch **fans out** to the subscription registry:
    /// every follower of the table receives the signed log record as a
    /// `LogSegment`, and every range subscriber whose range intersects the
    /// batch's dirty intervals receives an incremental `DeltaVO` at the
    /// new epoch. The `stores` lock serializes updates, so subscribers see
    /// epochs in order.
    ///
    /// Returns the table's new epoch. On error nothing changes.
    pub fn apply_update(
        &self,
        table_id: u32,
        ops: &[Mutation],
        resigned: &[(u32, Signature)],
    ) -> Result<u64, UpdateError> {
        let mut stores = lock_recover(&self.inner.stores);
        let known = read_recover(&self.inner.tables).contains_key(&table_id);
        let store = stores.get_mut(&table_id).ok_or(if known {
            UpdateError::NotStoreBacked(table_id)
        } else {
            UpdateError::UnknownTable(table_id)
        })?;
        store.apply_replayed(ops, resigned)?;
        let seq = store.next_seq() - 1;
        let fresh = store.table_arc();
        // Scoped so the tables write-lock is released before fan-out takes
        // `subs` (registration jobs acquire `subs` before reading
        // `tables`; holding both here would deadlock against them).
        let epoch = {
            let mut tables = write_recover(&self.inner.tables);
            let slot = tables
                .get_mut(&table_id)
                .expect("store-backed table is registered");
            slot.st = Arc::clone(&fresh);
            slot.epoch += 1;
            slot.epoch
        };
        fan_out(&self.inner, table_id, seq, epoch, &fresh, ops, resigned);
        Ok(epoch)
    }

    /// Stops accepting, joins every thread, and returns once the server is
    /// fully down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Graceful shutdown: stops accepting immediately (the listener
    /// closes), lets every connection finish the requests it already sent
    /// and flush its write queue, then closes it — each such close counts
    /// in the `drains` stat. Once every connection is gone (or `timeout`
    /// elapses, whichever is first) the server shuts down fully. Returns
    /// `true` if every connection drained within the timeout, plus the
    /// final counter snapshot (taken after the drain, so it includes the
    /// `drains` count itself).
    pub fn drain(mut self, timeout: Duration) -> (bool, StatsSnapshot) {
        self.drain.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.wake();
        }
        let deadline = std::time::Instant::now() + timeout;
        let flushed = loop {
            if self.inner.stats.open_connections.load(Ordering::Relaxed) == 0 {
                break true;
            }
            if std::time::Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let stats = self.inner.snapshot();
        self.shutdown_inner();
        (flushed, stats)
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // One wake byte per shard replaces the old throwaway
        // self-connection hack: each shard sees the flag on wakeup,
        // closes its connections, and exits.
        for shard in &self.shards {
            shard.wake();
        }
        for thread in self.shard_threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_core::prelude::*;
    use adp_relation::{Column, Schema, Table, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_inner() -> Inner {
        let mut rng = StdRng::seed_from_u64(0x9015);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
        let mut t = Table::new("t", schema);
        for i in 0..5i64 {
            t.insert(Record::new(vec![Value::Int(i * 10 + 5)])).unwrap();
        }
        let st = owner
            .sign_table(t, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let mut tables = HashMap::new();
        tables.insert(
            0u32,
            TableSlot {
                st: Arc::new(st),
                epoch: 0,
            },
        );
        Inner {
            tables: RwLock::new(tables),
            stores: Mutex::new(HashMap::new()),
            cache: Some(Mutex::new(LruCache::new(8))),
            subs: Mutex::new(Vec::new()),
            seen_subs: Mutex::new(std::collections::HashSet::new()),
            stats: ServerStats::default(),
            tamper: None,
            planned_tamper: None,
            max_push_bytes: crate::protocol::MAX_PAYLOAD as usize,
        }
    }

    /// One panicking worker must not poison the whole service: the cache
    /// and registry locks recover from poisoning, so requests after the
    /// panic still answer (previously every one of them panicked on
    /// `.expect("cache lock")`).
    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        let inner = Arc::new(test_inner());
        // Poison the cache mutex: a thread panics while holding the lock.
        let poisoner = Arc::clone(&inner);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.cache.as_ref().unwrap().lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(
            inner.cache.as_ref().unwrap().lock().is_err(),
            "the cache mutex must actually be poisoned for this test to bite"
        );
        // Poison the table registry the same way.
        let poisoner = Arc::clone(&inner);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.tables.write().unwrap();
            panic!("deliberate poison");
        })
        .join();
        // Requests still serve end to end: registry lookup, cache
        // miss/insert, then a cache hit, then a stats snapshot.
        let q = SelectQuery::range(KeyRange::closed(0, 100));
        answer(&inner, 0, &q).expect("first answer after poisoning");
        answer(&inner, 0, &q).expect("second answer after poisoning");
        let snap = inner.snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.cache_entries, 1);
    }

    /// Regression: two *distinct* plans over the same key range must never
    /// share a cached VO. The planned key is the plan fingerprint (plus
    /// epochs), and the legacy key family is disjoint by its kind byte —
    /// so a legacy query, a planned plain select, and a planned DISTINCT
    /// select over the identical canonical range produce three cache
    /// entries and zero cross-hits.
    #[test]
    fn distinct_plans_over_same_range_never_share_a_cached_vo() {
        let inner = Arc::new(test_inner());
        let range = KeyRange::closed(0, 100);
        let q = SelectQuery::range(range);

        let legacy = answer(&inner, 0, &q).unwrap();
        let plain = answer_planned(
            &inner,
            &WirePlan::Select {
                table_id: 0,
                query: q.clone(),
            },
        )
        .unwrap();
        let distinct = answer_planned(
            &inner,
            &WirePlan::Select {
                table_id: 0,
                query: q.clone().distinct(),
            },
        )
        .unwrap();

        let snap = inner.snapshot();
        assert_eq!(snap.cache_hits, 0, "no plan may hit another plan's entry");
        assert_eq!(snap.cache_misses, 3);
        assert_eq!(snap.cache_entries, 3);
        // Each answer was computed independently — no shared blob.
        assert!(!Arc::ptr_eq(&plain, &distinct));
        assert!(!Arc::ptr_eq(&legacy, &plain));

        // Re-asking each is a hit on its own entry, still no crosstalk.
        let plain2 = answer_planned(
            &inner,
            &WirePlan::Select {
                table_id: 0,
                query: q.clone(),
            },
        )
        .unwrap();
        assert!(Arc::ptr_eq(&plain, &plain2));
        assert_eq!(inner.snapshot().cache_hits, 1);
    }
}
