//! Table schemas.

use crate::value::{Value, ValueType};
use std::fmt;

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ValueType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// A table schema: an ordered list of columns plus the index of the *key*
/// attribute `K` the table is sorted on (the attribute the owner builds the
/// signature chain over).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    key: usize,
}

impl Schema {
    /// Creates a schema. `key` names the sort/key attribute.
    ///
    /// # Panics
    /// If `key` is not a column, column names repeat, or the key column is
    /// not `Int` (the signature chain requires an ordered numeric domain;
    /// see `adp-core::domain` for the rationale and encodings).
    pub fn new(columns: Vec<Column>, key: &str) -> Self {
        let key_idx = columns
            .iter()
            .position(|c| c.name == key)
            .unwrap_or_else(|| panic!("key column '{key}' not in schema"));
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), columns.len(), "duplicate column names");
        assert_eq!(
            columns[key_idx].ty,
            ValueType::Int,
            "key column must be INT"
        );
        Schema {
            columns,
            key: key_idx,
        }
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the key column.
    pub fn key_index(&self) -> usize {
        self.key
    }

    /// Name of the key column.
    pub fn key_name(&self) -> &str {
        &self.columns[self.key].name
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Checks that `values` matches the schema (arity and types).
    pub fn validate(&self, values: &[Value]) -> Result<(), SchemaError> {
        if values.len() != self.columns.len() {
            return Err(SchemaError::Arity {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (i, (v, c)) in values.iter().zip(&self.columns).enumerate() {
            if v.value_type() != c.ty {
                return Err(SchemaError::Type {
                    column: i,
                    expected: c.ty,
                    got: v.value_type(),
                });
            }
        }
        Ok(())
    }

    /// Returns a new schema extended with extra columns (used by the owner
    /// to add per-role visibility columns, Section 4.4 Case 2).
    pub fn with_columns(&self, extra: Vec<Column>) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(extra);
        Schema::new(columns, self.key_name())
    }
}

/// Schema validation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    Arity {
        expected: usize,
        got: usize,
    },
    Type {
        column: usize,
        expected: ValueType,
        got: ValueType,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Arity { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            SchemaError::Type {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch in column {column}: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Int),
                Column::new("photo", ValueType::Bytes),
            ],
            "salary",
        )
    }

    #[test]
    fn key_lookup() {
        let s = emp_schema();
        assert_eq!(s.key_index(), 2);
        assert_eq!(s.key_name(), "salary");
        assert_eq!(s.column_index("photo"), Some(4));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.arity(), 5);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn bad_key_panics() {
        Schema::new(vec![Column::new("a", ValueType::Int)], "b");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::new(
            vec![
                Column::new("a", ValueType::Int),
                Column::new("a", ValueType::Int),
            ],
            "a",
        );
    }

    #[test]
    #[should_panic(expected = "key column must be INT")]
    fn non_int_key_panics() {
        Schema::new(vec![Column::new("a", ValueType::Text)], "a");
    }

    #[test]
    fn validation() {
        let s = emp_schema();
        let good = vec![
            Value::Int(1),
            Value::from("A"),
            Value::Int(2000),
            Value::Int(1),
            Value::from(vec![0u8; 4]),
        ];
        assert!(s.validate(&good).is_ok());
        assert!(matches!(
            s.validate(&good[..4]),
            Err(SchemaError::Arity {
                expected: 5,
                got: 4
            })
        ));
        let mut bad = good.clone();
        bad[1] = Value::Int(9);
        assert!(matches!(
            s.validate(&bad),
            Err(SchemaError::Type { column: 1, .. })
        ));
    }

    #[test]
    fn extension_preserves_key() {
        let s = emp_schema().with_columns(vec![Column::new("vis_hr", ValueType::Bool)]);
        assert_eq!(s.arity(), 6);
        assert_eq!(s.key_name(), "salary");
    }
}
