//! Cross-validation of the implementation against the paper's cost model:
//! the *structure* of real VOs must match formula (4)'s accounting, and
//! the verifier's hash-op counts must scale as formula (5) predicts.

use adp_core::costmodel;
use adp_core::prelude::*;
use adp_core::vo::QueryVO;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn owner() -> &'static Owner {
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC057);
        Owner::new(512, &mut rng)
    })
}

/// The global hash-op counter is process-wide, so tests in this binary
/// must not hash concurrently while one of them is measuring.
fn measure_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A table over a 2^16 domain, keys spaced 16 apart.
fn setup() -> (SignedTable, Certificate) {
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Int),
        ],
        "k",
    );
    let domain = Domain::new(0, (1 << 16) + 4);
    let mut t = Table::new("cm", schema);
    for i in 0..300i64 {
        t.insert(Record::new(vec![
            Value::Int(domain.key_min() + i * 16),
            Value::Int(i),
        ]))
        .unwrap();
    }
    let st = owner()
        .sign_table(t, domain, SchemeConfig::default())
        .unwrap();
    let cert = owner().certificate(&st);
    (st, cert)
}

#[test]
fn vo_digest_count_matches_formula4_structure() {
    let _guard = measure_lock();
    // Formula (4): digests = [m + 4 + ⌈log2 m⌉] (boundary, worst case)
    //                        + 3(n-a+1) (per entry) + 1 (right delimiter g)
    // Our VO carries per boundary: (m+1) intermediates + selector(1 or
    // 1+⌈log2 m⌉) + other-component + attr-root, and per entry: 2 rep
    // roots + 1 attr root. The per-entry coefficient 3 must match exactly;
    // the boundary terms must lie within the formula's worst case + O(1).
    let (st, cert) = setup();
    let publisher = Publisher::new(&st);
    let radix = st.radix().unwrap();
    let m = radix.m() as usize;
    let key_min = st.domain().key_min();

    let mut prev = None;
    for q in [1usize, 2, 5, 10, 50] {
        let beta = key_min + (q as i64 - 1) * 16;
        let query = SelectQuery::range(KeyRange::closed(key_min, beta));
        let (rows, vo) = publisher.answer_select(&query).unwrap();
        assert_eq!(rows.len(), q);
        verify_select(&cert, &query, &rows, &vo).unwrap();
        let count = vo.digest_count();
        if let Some((prev_q, prev_count)) = prev {
            // Per-entry increment is exactly 3 digests (formula (4)).
            assert_eq!(
                count - prev_count,
                3 * (q - prev_q),
                "per-entry digest coefficient"
            );
        }
        // Boundary digests = total - 3q; formula's worst case per side is
        // about m + 4 + ⌈log2 m⌉.
        let boundary = count - 3 * q;
        let worst_case_two_sides =
            2 * (m + 1 + 1 + costmodel::ceil_log2(m as u32) as usize + 2) + 4;
        assert!(
            boundary <= worst_case_two_sides,
            "boundary digests {boundary} exceed worst case {worst_case_two_sides}"
        );
        assert!(
            boundary >= 2 * (m + 1),
            "boundary must carry m+1 intermediates per side"
        );
        prev = Some((q, count));
    }
    let _ = QueryVO::TriviallyEmpty; // type anchor
}

#[test]
fn verify_hash_ops_scale_linearly_like_formula5() {
    let _guard = measure_lock();
    let (st, cert) = setup();
    let publisher = Publisher::new(&st);
    let key_min = st.domain().key_min();
    let mut samples = Vec::new();
    for q in [10usize, 20, 40, 80] {
        let beta = key_min + (q as i64 - 1) * 16;
        let query = SelectQuery::range(KeyRange::closed(key_min, beta));
        let (rows, vo) = publisher.answer_select(&query).unwrap();
        adp_crypto::reset_hash_ops();
        verify_select(&cert, &query, &rows, &vo).unwrap();
        samples.push((q as f64, adp_crypto::hash_ops() as f64));
    }
    // Fit a line through first/last; middle points must sit on it (±10%):
    // C_user is affine in q (formula (5)).
    let (q0, c0) = samples[0];
    let (q3, c3) = samples[3];
    let slope = (c3 - c0) / (q3 - q0);
    let intercept = c0 - slope * q0;
    for &(q, c) in &samples[1..3] {
        let predicted = slope * q + intercept;
        let err = (c - predicted).abs() / predicted;
        assert!(
            err < 0.10,
            "q={q}: measured {c}, affine prediction {predicted}"
        );
    }
    // The slope should be within the formula's worst-case per-entry cost
    // 2(B(m+1)+2) for B=2, m=16 (domain 2^16): 2(34+2) = 72.
    let worst = 2.0 * (2.0 * 17.0 + 2.0);
    assert!(slope <= worst * 1.15, "slope {slope} vs worst case {worst}");
    assert!(slope >= worst * 0.3, "slope {slope} implausibly small");
}

#[test]
fn vo_bytes_independent_of_table_size() {
    let _guard = measure_lock();
    // Formula (4) has no `n` term — the paper's key advantage over [10].
    // Measure the same |Q|=5 query on tables of 100 vs 2000 rows.
    let schema = Schema::new(vec![Column::new("k", ValueType::Int)], "k");
    let domain = Domain::new(0, 1 << 16);
    let mut sizes = Vec::new();
    for n in [100i64, 2000] {
        let mut t = Table::new("sz", schema.clone());
        for i in 0..n {
            t.insert(Record::new(vec![Value::Int(domain.key_min() + i * 16)]))
                .unwrap();
        }
        let st = owner()
            .sign_table(t, domain, SchemeConfig::default())
            .unwrap();
        let query = SelectQuery::range(KeyRange::closed(
            domain.key_min() + 160,
            domain.key_min() + 160 + 4 * 16,
        ));
        let (rows, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        assert_eq!(rows.len(), 5);
        sizes.push(vo.wire_size());
    }
    // Identical up to boundary-representation variation (a few digests).
    let diff = sizes[0].abs_diff(sizes[1]);
    assert!(
        diff <= 20 * 17,
        "VO size must not grow with n: {sizes:?} (diff {diff})"
    );
}
