//! Scheme configuration.

use adp_crypto::Hasher;

/// How `g(r)`'s chain components are computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Formula (2)/(3): a single iterated chain of length `δ = U - r.K - 1`
    /// per direction. Cost is linear in the domain width — the paper's
    /// Section 5.1 notes 2³² hashes ≈ 60 hours for a 4-byte key at
    /// 50 µs/hash — so this mode exists for small domains, tests, and the
    /// `ablation_chain` bench.
    Conceptual,
    /// Section 5.1: base-`B` digit decomposition with canonical and `m`
    /// preferred non-canonical representations; cost is
    /// `O(B · log_B(U - L))` per direction.
    Optimized {
        /// The number base `B > 1`. The paper's Figure 10 shows the optimum
        /// at `2 < B < 3`; 2 is the default.
        base: u32,
    },
}

/// Full configuration of the completeness-verification scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchemeConfig {
    pub mode: Mode,
    /// Digest length in bytes (16 = the paper's 128-bit `M_digest`).
    pub digest_len: usize,
    /// Whether the publisher condenses per-record signatures into one
    /// aggregate (Section 5.2). Disabling it lets benches measure the
    /// savings.
    pub aggregate_signatures: bool,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            mode: Mode::Optimized { base: 2 },
            digest_len: 16,
            aggregate_signatures: true,
        }
    }
}

impl SchemeConfig {
    /// A conceptual-mode config (small domains only).
    pub fn conceptual() -> Self {
        SchemeConfig {
            mode: Mode::Conceptual,
            ..Default::default()
        }
    }

    /// An optimized-mode config with the given base.
    pub fn with_base(base: u32) -> Self {
        assert!(base >= 2, "base B must be > 1");
        SchemeConfig {
            mode: Mode::Optimized { base },
            ..Default::default()
        }
    }

    /// Builder: sets the digest length.
    pub fn digest_len(mut self, len: usize) -> Self {
        self.digest_len = len;
        self
    }

    /// Builder: toggles signature aggregation.
    pub fn aggregate(mut self, on: bool) -> Self {
        self.aggregate_signatures = on;
        self
    }

    /// The hasher implied by this config.
    pub fn hasher(&self) -> Hasher {
        Hasher::new(self.digest_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SchemeConfig::default();
        assert_eq!(c.digest_len * 8, 128, "M_digest default");
        assert_eq!(c.mode, Mode::Optimized { base: 2 });
        assert!(c.aggregate_signatures);
    }

    #[test]
    fn builders() {
        let c = SchemeConfig::with_base(10).digest_len(32).aggregate(false);
        assert_eq!(c.mode, Mode::Optimized { base: 10 });
        assert_eq!(c.hasher().digest_len(), 32);
        assert!(!c.aggregate_signatures);
    }

    #[test]
    #[should_panic(expected = "base B must be > 1")]
    fn base_one_rejected() {
        let _ = SchemeConfig::with_base(1);
    }
}
