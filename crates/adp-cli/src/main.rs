//! `adp` — publish, query, and verify completeness-authenticated tables
//! from the command line.
//!
//! The three roles of the paper's Figure 3 as subcommands:
//!
//! ```text
//! adp publish --csv data.csv --key <col> --domain L..U --out published/
//!     (owner)    reads a CSV (header row = column names; a column is INT
//!                if every value parses as i64, else TEXT), signs it, and
//!                writes: table.csv, signatures.bin, certificate.bin
//!
//! adp query --dir published/ --range A..B [--project c1,c2] --out answer/
//!     (publisher) loads the published directory, answers the range query,
//!                and writes: result.bin, vo.bin (plus a readable result.csv)
//!
//! adp verify --cert published/certificate.bin --range A..B [--project c1,c2] \
//!            --answer answer/
//!     (user)     checks completeness + authenticity of the answer against
//!                the certificate alone.
//!
//! adp serve --dir published/ --addr 127.0.0.1:4170
//!     (publisher) serves the published directory over TCP: a threaded
//!                server with VO caching speaking the docs/PROTOCOL.md
//!                frame protocol.
//!
//! adp rquery --addr 127.0.0.1:4170 --cert published/certificate.bin \
//!            --range A..B [--project c1,c2] [--out answer/]
//!     (user)     queries a live server and verifies the answer in one
//!                step; optionally writes result.bin / vo.bin like `query`.
//! ```
//!
//! `query` and `verify` are deliberately separated processes exchanging
//! only files, and `serve`/`rquery` exchange only sockets: the verifier
//! sees exactly the bytes an untrusted publisher would send.

mod csv;

use adp_core::prelude::*;
use adp_core::wire;
use adp_relation::{
    Column, KeyRange, Projection, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// CLI failure classes, each with a distinct exit code so supervisors
/// and scripts can tell "restarting might help" from "don't bother":
///
/// * exit 1 — bad invocation, local I/O, or setup failure;
/// * exit 2 — **fatal**: a peer answered and the answer is wrong
///   (failed verification, a server-reported error) — retrying re-asks a
///   peer that already gave its final answer;
/// * exit 3 — **retryable, budget exhausted**: the transport kept
///   failing past `--retry` attempts — a supervisor may restart the
///   command, or rerun with a larger budget.
enum CliError {
    Other(String),
    Fatal(String),
    Exhausted(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Other(message)
    }
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            CliError::Other(m) | CliError::Fatal(m) | CliError::Exhausted(m) => m,
        }
    }

    fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Fatal(_) => 2,
            CliError::Exhausted(_) => 3,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("publish") => cmd_publish(&parse_flags(&args[1..])).map_err(CliError::from),
        Some("query") => cmd_query(&parse_flags(&args[1..])).map_err(CliError::from),
        Some("sql") => cmd_sql(&parse_flags(&args[1..])),
        Some("verify") => cmd_verify(&parse_flags(&args[1..])).map_err(CliError::from),
        Some("serve") => cmd_serve(&parse_flags(&args[1..])).map_err(CliError::from),
        Some("rquery") => cmd_rquery(&parse_flags(&args[1..])).map_err(CliError::from),
        Some("follow") => cmd_follow(&parse_flags(&args[1..])),
        Some("subscribe") => cmd_subscribe(&parse_flags(&args[1..])),
        Some("ingest") => cmd_ingest(&parse_flags(&args[1..])).map_err(CliError::from),
        Some("compact") => cmd_compact(&parse_flags(&args[1..])).map_err(CliError::from),
        Some("compare") => cmd_compare(&args[1..]).map_err(CliError::from),
        Some("load") => cmd_load(&parse_flags(&args[1..])).map_err(CliError::from),
        // Hidden helper mode `adp load` re-execs itself in when the fd
        // limit cannot hold both ends of every idle connection at once.
        Some("--flood") => {
            adp_bench::load::flood_main(&args[1..]).map_err(|e| CliError::Other(e.to_string()))
        }
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::Other(format!(
            "unknown subcommand '{other}' (try 'adp help')"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

fn print_usage() {
    println!(
        "adp — authenticated data publishing (Pang et al., SIGMOD 2005)\n\
         \n\
         USAGE:\n\
         adp publish --csv FILE --key COLUMN --domain L..U --out DIR [--seed N] [--bits N]\n\
         \x20           [--store DIR]\n\
         adp query   (--dir DIR | --store DIR) --range A..B [--project c1,c2] --out DIR\n\
         adp sql     --csv FILE --key COLUMN --domain L..U --query SQL\n\
         \x20           [--seed N] [--bits N]\n\
         adp verify  --cert FILE --range A..B [--project c1,c2] --answer DIR\n\
         adp serve   (--dir DIR | --store DIR) [--addr HOST:PORT] [--table N]\n\
         \x20           [--workers N] [--cache N] [--drain-secs N]\n\
         adp rquery  --addr HOST:PORT --cert FILE --range A..B [--project c1,c2]\n\
         \x20           [--table N] [--out DIR]\n\
         adp follow  --addr HOST:PORT --cert FILE --store DIR [--table N]\n\
         \x20           [--serve-addr HOST:PORT] [--retry N] [--max-backoff SECS]\n\
         adp subscribe --addr HOST:PORT --cert FILE --range A..B [--table N]\n\
         \x20           [--sub N] [--deltas N] [--retry N] [--max-backoff SECS]\n\
         adp ingest  --store DIR [--csv FILE] [--delete K[:R],...] [--seed N] [--bits N]\n\
         adp compact --store DIR\n\
         adp compare [--tiny] [--check] [--write-doc] [--out FILE] [--doc FILE]\n\
         adp load    [--idle-conns N] [--rate N] [--duration-secs N] [--query-conns N]\n\
         \x20           [--out FILE] [--label L]\n\
         \n\
         `compare` reproduces the paper's scheme comparison (chain vs MHT,\n\
         aggregated signatures, VB-tree) over the shared workload grid and\n\
         keeps docs/EVALUATION.md verifiably in sync (--check).\n\
         `load` runs the self-contained load harness (docs/PERFORMANCE.md):\n\
         an in-process server holding an idle connection fleet while an\n\
         open-loop query storm measures p50/p90/p99 latency.\n\
         `--store DIR` is the durable format (docs/STORAGE.md): a snapshot\n\
         plus an append-only update log. `ingest` applies a signed batch of\n\
         inserts/deletes with O(k) re-signing (regenerate the owner keypair\n\
         with the same --seed/--bits used at publish); `compact` folds the\n\
         log into a fresh snapshot.\n\
         `follow` mirrors a served table over the wire (protocol v5\n\
         log-shipping): it bootstraps from an audited snapshot, replays the\n\
         signed update log into its own store at DIR, verifies every record\n\
         before applying, and serves the mirror on --serve-addr.\n\
         `subscribe` registers a live range subscription: the initial answer\n\
         and every pushed delta are verified against the certificate before\n\
         being shown; --deltas N exits after N pushed deltas.\n\
         `--retry N` makes follow/subscribe self-heal transport failures with\n\
         capped exponential backoff (ceiling --max-backoff seconds); fatal\n\
         errors never retry. Exit codes: 1 usage/IO, 2 fatal (verification or\n\
         server error), 3 retry budget exhausted. `serve` drains on ctrl-c or\n\
         SIGTERM: it refuses new connections, flushes open ones for up to\n\
         --drain-secs, and prints a final stats line.\n"
    );
}

type Flags = BTreeMap<String, String>;

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn need<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("missing --{key}"))
}

fn parse_range_pair(s: &str) -> Result<(i64, i64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("expected L..U, got '{s}'"))?;
    let a: i64 = a.trim().parse().map_err(|_| format!("bad bound '{a}'"))?;
    let b: i64 = b.trim().parse().map_err(|_| format!("bad bound '{b}'"))?;
    if a >= b {
        return Err(format!("empty interval {a}..{b}"));
    }
    Ok((a, b))
}

fn parse_projection(flags: &Flags) -> Projection {
    match flags.get("project") {
        Some(cols) if !cols.is_empty() => {
            Projection::Columns(cols.split(',').map(|c| c.trim().to_string()).collect())
        }
        _ => Projection::All,
    }
}

// ---------------------------------------------------------------- publish

fn cmd_publish(flags: &Flags) -> Result<(), String> {
    let csv_path = need(flags, "csv")?;
    let key_col = need(flags, "key")?;
    let (l, u) = parse_range_pair(need(flags, "domain")?)?;
    let out = PathBuf::from(need(flags, "out")?);
    let seed: u64 = flags.get("seed").map_or(Ok(0xCAFE), |s| {
        s.parse().map_err(|_| "bad --seed".to_string())
    })?;
    let bits: usize = flags.get("bits").map_or(Ok(1024), |s| {
        s.parse().map_err(|_| "bad --bits".to_string())
    })?;

    let (table, csv_text) = load_csv_table(Path::new(csv_path), key_col)?;
    let rows = table.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = Owner::new(bits, &mut rng);
    let start = std::time::Instant::now();
    let signed = owner
        .sign_table(table, Domain::new(l, u), SchemeConfig::default())
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let cert = owner.certificate(&signed);

    fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    fs::write(out.join("table.csv"), csv_text).map_err(|e| e.to_string())?;
    let sigs: Vec<_> = (0..signed.chain_len())
        .map(|i| signed.entry(i).signature.clone())
        .collect();
    fs::write(out.join("signatures.bin"), wire::encode_signatures(&sigs))
        .map_err(|e| e.to_string())?;
    fs::write(out.join("certificate.bin"), wire::encode_certificate(&cert))
        .map_err(|e| e.to_string())?;
    println!(
        "published {rows} rows in {:.2}s → {} ({} signatures, cert {} bytes)",
        elapsed.as_secs_f64(),
        out.display(),
        rows + 2,
        wire::encode_certificate(&cert).len()
    );
    if let Some(store_dir) = flags.get("store").filter(|s| !s.is_empty()) {
        let store = adp_store::Store::create(store_dir, signed).map_err(|e| e.to_string())?;
        println!(
            "store created at {} (snapshot + empty update log; mutate with 'adp ingest')",
            store.dir().display()
        );
    }
    println!("ship the whole directory to publishers; give users certificate.bin");
    Ok(())
}

/// Loads a CSV into a Table (INT column if all values parse; else TEXT).
/// Returns the table plus the canonicalized CSV text for re-publication.
fn load_csv_table(path: &Path, key_col: &str) -> Result<(Table, String), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    let names = csv::parse_line(header)?;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = csv::parse_line(line)?;
        if fields.len() != names.len() {
            return Err(format!(
                "line {}: {} fields, header has {}",
                lineno + 2,
                fields.len(),
                names.len()
            ));
        }
        rows.push(fields);
    }
    // Infer column types.
    let mut types = vec![ValueType::Int; names.len()];
    for (c, ty) in types.iter_mut().enumerate() {
        if !rows.iter().all(|r| r[c].trim().parse::<i64>().is_ok()) {
            *ty = ValueType::Text;
        }
    }
    let key_idx = names
        .iter()
        .position(|n| n == key_col)
        .ok_or_else(|| format!("key column '{key_col}' not in header"))?;
    if types[key_idx] != ValueType::Int {
        return Err(format!("key column '{key_col}' must be integer-valued"));
    }
    let columns: Vec<Column> = names
        .iter()
        .zip(&types)
        .map(|(n, t)| Column::new(n.clone(), *t))
        .collect();
    let schema = Schema::new(columns, key_col);
    let mut table = Table::new(
        path.file_stem().and_then(|s| s.to_str()).unwrap_or("table"),
        schema,
    );
    for fields in &rows {
        let values: Vec<Value> = fields
            .iter()
            .zip(&types)
            .map(|(f, t)| match t {
                ValueType::Int => Value::Int(f.trim().parse().unwrap()),
                _ => Value::Text(f.clone()),
            })
            .collect();
        table
            .insert(Record::new(values))
            .map_err(|e| e.to_string())?;
    }
    Ok((table, text))
}

// ------------------------------------------------------------------ query

/// Loads a published directory (`table.csv` + `signatures.bin` +
/// `certificate.bin`) back into a [`SignedTable`], refusing to serve data
/// that fails the signature audit.
fn load_published(dir: &Path) -> Result<SignedTable, String> {
    let cert_bytes = fs::read(dir.join("certificate.bin")).map_err(|e| e.to_string())?;
    let cert = wire::decode_certificate(&cert_bytes).map_err(|e| e.to_string())?;
    let sig_bytes = fs::read(dir.join("signatures.bin")).map_err(|e| e.to_string())?;
    let sigs = wire::decode_signatures(&sig_bytes).map_err(|e| e.to_string())?;
    let (table, _) = load_csv_table(&dir.join("table.csv"), cert.schema.key_name())?;
    let signed = SignedTable::from_parts(
        table,
        cert.domain,
        cert.config,
        sigs,
        cert.public_key.clone(),
    )
    .map_err(|e| e.to_string())?;
    if !signed.audit() {
        return Err("published data does not match its signatures — refusing to serve".into());
    }
    Ok(signed)
}

/// Where `query`/`serve` read their signed table from.
enum TableSource {
    /// A published directory (`--dir`): static files.
    Published(Box<SignedTable>),
    /// A durable store (`--store`): kept open so `serve` can stay
    /// live-updatable.
    Stored(adp_store::Store),
}

/// Resolves the `--dir` / `--store` selection into a [`TableSource`].
/// Both paths refuse data that fails the signature audit.
fn load_table_source(flags: &Flags) -> Result<TableSource, String> {
    match (
        flags.get("dir").filter(|s| !s.is_empty()),
        flags.get("store").filter(|s| !s.is_empty()),
    ) {
        (Some(dir), None) => Ok(TableSource::Published(Box::new(load_published(
            Path::new(dir),
        )?))),
        (None, Some(store_dir)) => {
            let store = adp_store::Store::open(store_dir).map_err(|e| e.to_string())?;
            if !store.audit() {
                return Err("store data does not match its signatures — refusing to serve".into());
            }
            Ok(TableSource::Stored(store))
        }
        _ => Err("pass exactly one of --dir or --store".into()),
    }
}

/// Loads the signed table itself when the caller doesn't need to keep the
/// store open (the `query` path).
fn load_signed_source(flags: &Flags) -> Result<SignedTable, String> {
    Ok(match load_table_source(flags)? {
        TableSource::Published(signed) => *signed,
        TableSource::Stored(store) => store.into_table(),
    })
}

fn cmd_query(flags: &Flags) -> Result<(), String> {
    let (a, b) = parse_range_pair(need(flags, "range")?)?;
    let out = PathBuf::from(need(flags, "out")?);
    let projection = parse_projection(flags);
    let signed = load_signed_source(flags)?;

    let query = SelectQuery {
        range: KeyRange::closed(a, b),
        filters: Vec::new(),
        projection,
        distinct: false,
    };
    let (result, vo) = Publisher::new(&signed)
        .answer_select(&query)
        .map_err(|e| e.to_string())?;
    let result_bytes = wire::encode_records(&result);
    let vo_bytes = wire::encode_vo(&vo);
    write_answer_dir(&out, &result, &result_bytes, &vo_bytes)?;
    println!(
        "answered [{a}, {b}]: {} rows, {} result bytes + {} VO bytes → {}",
        result.len(),
        result_bytes.len(),
        vo_bytes.len(),
        out.display()
    );
    Ok(())
}

/// Writes an answer directory (`result.bin` + `vo.bin` + a human-readable
/// `result.csv`) in the layout `adp verify --answer` reads back — shared
/// by `query` (files) and `rquery` (socket).
fn write_answer_dir(
    out: &Path,
    rows: &[Record],
    result_bytes: &[u8],
    vo_bytes: &[u8],
) -> Result<(), String> {
    fs::create_dir_all(out).map_err(|e| e.to_string())?;
    fs::write(out.join("result.bin"), result_bytes).map_err(|e| e.to_string())?;
    fs::write(out.join("vo.bin"), vo_bytes).map_err(|e| e.to_string())?;
    let mut csv_out = String::new();
    for rec in rows {
        let line: Vec<String> = rec
            .values()
            .iter()
            .map(|v| csv::write_field(&value_to_text(v)))
            .collect();
        csv_out.push_str(&line.join(","));
        csv_out.push('\n');
    }
    fs::write(out.join("result.csv"), csv_out).map_err(|e| e.to_string())
}

// -------------------------------------------------------------------- sql

/// Parses, plans, and executes a SQL statement against a CSV signed
/// in-process: one command that walks the whole verified pipeline. The
/// statement's FROM name is the CSV's file stem. The EXPLAIN block shows
/// the cost-model comparison (naive vs chosen plan) and the rewrite
/// passes that produced the winner; execution then goes through the same
/// encode → verify loop a remote session uses, so no row is printed
/// unless the answer verified against the certificate.
fn cmd_sql(flags: &Flags) -> Result<(), CliError> {
    use adp_core::plan::{compute_plan_answer, encode_plan_answer, verify_plan};

    let csv_path = need(flags, "csv")?;
    let key_col = need(flags, "key")?;
    let (l, u) = parse_range_pair(need(flags, "domain")?)?;
    let sql = need(flags, "query")?.to_string();
    let seed: u64 = flags.get("seed").map_or(Ok(0xCAFE), |s| {
        s.parse().map_err(|_| "bad --seed".to_string())
    })?;
    let bits: usize = flags
        .get("bits")
        .map_or(Ok(512), |s| s.parse().map_err(|_| "bad --bits".to_string()))?;

    let (table, _) = load_csv_table(Path::new(csv_path), key_col)?;
    let rows = table.len() as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = Owner::new(bits, &mut rng);
    let signed = owner
        .sign_table(table, Domain::new(l, u), SchemeConfig::default())
        .map_err(|e| e.to_string())?;
    let cert = owner.certificate(&signed);

    let mut catalog = Catalog::new();
    catalog.add(CatalogTable::from_certificate(0, &cert, rows));

    let stmt = parse(&sql).map_err(|e| e.to_string())?;
    let planned = Planner::default()
        .plan(&stmt, &catalog)
        .map_err(|e| e.to_string())?;

    println!("EXPLAIN {sql}");
    println!(
        "  naive  cost: {:>8.0} VO bytes + {:>6.2} ms verify  (score {:.0})",
        planned.naive_cost.vo_bytes,
        planned.naive_cost.verify_ms,
        planned.naive_cost.score()
    );
    println!(
        "  chosen cost: {:>8.0} VO bytes + {:>6.2} ms verify  (score {:.0})",
        planned.chosen_cost.vo_bytes,
        planned.chosen_cost.verify_ms,
        planned.chosen_cost.score()
    );
    println!(
        "  passes applied: {}",
        if planned.passes_applied.is_empty() {
            "(none — naive plan already cheapest)".to_string()
        } else {
            planned.passes_applied.join(", ")
        }
    );
    for line in planned.optimized.to_string().lines() {
        println!("    {line}");
    }

    // The same answer/verify loop a remote session runs, over local bytes.
    let answer = compute_plan_answer(&planned.chosen.wire, |id| (id == 0).then_some(&signed))
        .map_err(|e| e.to_string())?;
    let (result_bytes, vo_bytes) = encode_plan_answer(&answer);
    let verified = verify_plan(
        &planned.chosen.wire,
        |id| (id == 0).then_some(&cert),
        &result_bytes,
        &vo_bytes,
    )
    .map_err(|e| CliError::Fatal(format!("verification failed: {e}")))?;
    let out = planned
        .chosen
        .finish(verified.rows)
        .map_err(|e| e.to_string())?;

    println!(
        "verified: {} rows, {} signatures ({} result bytes + {} VO bytes on the wire)",
        verified.rows_verified,
        verified.signatures_verified,
        result_bytes.len(),
        vo_bytes.len()
    );
    match &out.aggregate {
        Some((label, value)) => {
            let shown = match value {
                AggregateValue::Count(n) => n.to_string(),
                AggregateValue::Sum(s) => s.to_string(),
                AggregateValue::Min(m) | AggregateValue::Max(m) => {
                    m.map_or("NULL".to_string(), |v| v.to_string())
                }
                AggregateValue::Avg(a) => a.map_or("NULL".to_string(), |v| format!("{v:.3}")),
            };
            println!("{label} = {shown}");
        }
        None => {
            println!("{}", out.columns.join(","));
            for r in &out.rows {
                let line: Vec<String> = r.values().iter().map(value_to_text).collect();
                println!("{}", line.join(","));
            }
        }
    }
    Ok(())
}

fn value_to_text(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Text(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Bytes(b) => format!(
            "0x{}",
            b.iter().map(|x| format!("{x:02x}")).collect::<String>()
        ),
    }
}

// ----------------------------------------------------------------- verify

fn cmd_verify(flags: &Flags) -> Result<(), String> {
    let cert_path = PathBuf::from(need(flags, "cert")?);
    let (a, b) = parse_range_pair(need(flags, "range")?)?;
    let answer = PathBuf::from(need(flags, "answer")?);
    let projection = parse_projection(flags);

    let cert_bytes = fs::read(&cert_path).map_err(|e| e.to_string())?;
    let cert = wire::decode_certificate(&cert_bytes).map_err(|e| e.to_string())?;
    let result_bytes = fs::read(answer.join("result.bin")).map_err(|e| e.to_string())?;
    let vo_bytes = fs::read(answer.join("vo.bin")).map_err(|e| e.to_string())?;
    let query = SelectQuery {
        range: KeyRange::closed(a, b),
        filters: Vec::new(),
        projection,
        distinct: false,
    };
    match verify_select_wire(&cert, &query, &result_bytes, &vo_bytes) {
        Ok((rows, report)) => {
            println!(
                "VERIFIED: {} rows are the complete, authentic answer to [{a}, {b}] \
                 ({} signature(s) checked{})",
                rows.len(),
                report.signatures_verified,
                if report.empty { ", provably empty" } else { "" }
            );
            Ok(())
        }
        Err(e) => Err(format!("REJECTED: {e}")),
    }
}

// ------------------------------------------------------------------ serve

fn parse_u32_flag(flags: &Flags, key: &str, default: u32) -> Result<u32, String> {
    flags.get(key).map_or(Ok(default), |s| {
        s.parse().map_err(|_| format!("bad --{key}"))
    })
}

/// `--retry N` / `--max-backoff SECS` → a [`adp_server::RetryPolicy`].
/// The default is `--retry 0`: fail fast, exactly the pre-robustness
/// behavior. With a budget, transport failures reconnect with capped
/// exponential backoff; fatal errors (failed verification, server-side
/// errors) never retry regardless of the budget.
fn parse_retry_policy(flags: &Flags) -> Result<adp_server::RetryPolicy, String> {
    let retries = parse_u32_flag(flags, "retry", 0)?;
    let mut policy = if retries == 0 {
        adp_server::RetryPolicy::none()
    } else {
        adp_server::RetryPolicy {
            max_retries: retries,
            ..adp_server::RetryPolicy::default()
        }
    };
    if let Some(secs) = flags.get("max-backoff").filter(|s| !s.is_empty()) {
        let secs = secs
            .parse::<f64>()
            .ok()
            .filter(|s| *s > 0.0 && s.is_finite())
            .ok_or_else(|| "bad --max-backoff (want seconds > 0)".to_string())?;
        policy.max_backoff = std::time::Duration::from_secs_f64(secs);
    }
    Ok(policy)
}

/// Classifies a client error into the exit-code scheme: a retryable
/// transport error that survived the whole `--retry` budget exits 3, a
/// fatal (verification / server-reported) error exits 2.
fn classify_remote(e: adp_server::RemoteError, context: &str) -> CliError {
    if e.is_retryable() {
        CliError::Exhausted(format!("{context}: retries exhausted: {e}"))
    } else {
        CliError::Fatal(format!("REJECTED: {e}"))
    }
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4170");
    let table_id = parse_u32_flag(flags, "table", 0)?;
    let workers = parse_u32_flag(flags, "workers", 4)? as usize;
    let cache = parse_u32_flag(flags, "cache", 1024)? as usize;
    let drain_secs = parse_u32_flag(flags, "drain-secs", 5)?;

    // Route SIGINT / SIGTERM to a signalfd *before* the server spawns its
    // threads: the signal mask is inherited, so the signal is only ever
    // delivered here, never to a reactor shard mid-write.
    let signals =
        adp_server::sys::SignalFd::new(&[adp_server::sys::SIGINT, adp_server::sys::SIGTERM])
            .map_err(|e| format!("installing signal handler: {e}"))?;

    let mut server = adp_server::Server::new(adp_server::ServerConfig {
        workers,
        cache_capacity: cache,
        ..adp_server::ServerConfig::default()
    });
    let (rows, source) = match load_table_source(flags)? {
        TableSource::Published(signed) => {
            let rows = signed.len();
            server.add_table(table_id, *signed);
            (rows, "published dir".to_string())
        }
        TableSource::Stored(store) => {
            // Store-backed: the table stays live-updatable (epoch-based VO
            // cache invalidation) and the log was re-verified at open.
            let rows = store.table().len();
            let source = format!("store {} (seq {})", store.dir().display(), store.next_seq());
            server.add_store(table_id, store);
            (rows, source)
        }
    };
    let handle = server.serve(addr).map_err(|e| e.to_string())?;
    println!(
        "serving table {table_id} ({rows} rows, from {source}) on {} — {} workers, \
         VO cache {} entries (protocol: docs/PROTOCOL.md; ctrl-c or SIGTERM drains \
         for up to {drain_secs}s)",
        handle.addr(),
        workers.max(1),
        cache,
    );
    // Serve until signalled, then drain: refuse new connections, let
    // every open connection answer what it already sent and flush, then
    // shut down and report the final counters.
    let sig = signals
        .wait()
        .map_err(|e| format!("waiting for signal: {e}"))?;
    let name = if sig == adp_server::sys::SIGTERM {
        "SIGTERM"
    } else {
        "SIGINT"
    };
    println!("{name} received — draining (refusing new connections, flushing replies)");
    let (flushed, stats) = handle.drain(std::time::Duration::from_secs(u64::from(drain_secs)));
    println!(
        "drained {}: {} connection(s) closed in drain, {} total served, {} queries, \
         {} errors, {} subscription resync(s){}",
        if flushed { "cleanly" } else { "with timeout" },
        stats.drains,
        stats.connections,
        stats.queries,
        stats.errors,
        stats.resyncs,
        if flushed {
            ""
        } else {
            " — some connections were cut before flushing"
        },
    );
    Ok(())
}

// -------------------------------------------------------------- load

/// `adp load` — the PR 6 load harness as a subcommand: a self-contained
/// server + idle fleet + open-loop query storm in this process, printing
/// the latency distribution (and optionally the JSON snapshot).
fn cmd_load(flags: &Flags) -> Result<(), String> {
    use adp_bench::load::{render_json, run, LoadConfig};

    let mut cfg = LoadConfig {
        idle_connections: parse_u32_flag(flags, "idle-conns", 10_000)? as usize,
        query_connections: parse_u32_flag(flags, "query-conns", 8)? as usize,
        ..LoadConfig::default()
    };
    if let Some(rate) = flags.get("rate") {
        cfg.rate_per_sec = rate.parse().map_err(|_| "bad --rate")?;
    }
    if let Some(secs) = flags.get("duration-secs") {
        cfg.duration =
            std::time::Duration::from_secs_f64(secs.parse().map_err(|_| "bad --duration-secs")?);
    }

    let report = run(&cfg).map_err(|e| format!("load run failed: {e}"))?;
    let o = &report.open_loop;
    println!(
        "idle fleet : {} connections held ({} requested), {} reactor wakeups over {:?}, \
         {} process threads",
        report.idle_held,
        report.idle_target,
        report.steady_wakeups,
        report.steady_window,
        report.threads,
    );
    println!(
        "open loop  : {:.0} rps offered, {:.0} achieved ({} ok / {} err)",
        o.offered_rps, o.achieved_rps, o.completed, o.errors
    );
    println!(
        "latency    : p50 {} us | p90 {} us | p99 {} us | max {} us",
        o.p50_us, o.p90_us, o.p99_us, o.max_us
    );
    if let Some(out) = flags.get("out") {
        let label = flags.get("label").map(String::as_str).unwrap_or("adp-load");
        std::fs::write(out, render_json(&report, label)).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

// ------------------------------------------------------------ ingest

/// Parses CSV rows against an existing schema (ingest cannot re-infer
/// types: the batch must match the published table exactly). The header
/// must name every schema column, in any order.
fn records_for_schema(path: &Path, schema: &Schema) -> Result<Vec<Record>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    let names = csv::parse_line(header)?;
    if names.len() != schema.arity() {
        return Err(format!(
            "CSV has {} columns, the table schema has {}",
            names.len(),
            schema.arity()
        ));
    }
    let slots: Vec<usize> = names
        .iter()
        .map(|n| {
            schema
                .column_index(n)
                .ok_or_else(|| format!("column '{n}' is not in the table schema"))
        })
        .collect::<Result<_, _>>()?;
    let mut seen = vec![false; schema.arity()];
    for &slot in &slots {
        if seen[slot] {
            return Err(format!(
                "duplicate column '{}' in CSV header",
                schema.columns()[slot].name
            ));
        }
        seen[slot] = true;
    }
    let mut records = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = csv::parse_line(line)?;
        if fields.len() != names.len() {
            return Err(format!(
                "line {}: {} fields, header has {}",
                lineno + 2,
                fields.len(),
                names.len()
            ));
        }
        let mut values: Vec<Option<Value>> = vec![None; schema.arity()];
        for (field, &slot) in fields.iter().zip(&slots) {
            let col = &schema.columns()[slot];
            let value =
                match col.ty {
                    ValueType::Int => Value::Int(field.trim().parse().map_err(|_| {
                        format!("line {}: '{field}' is not an integer", lineno + 2)
                    })?),
                    ValueType::Text => Value::Text(field.clone()),
                    ValueType::Bool => match field.trim() {
                        "true" | "1" => Value::Bool(true),
                        "false" | "0" => Value::Bool(false),
                        other => return Err(format!("line {}: bad bool '{other}'", lineno + 2)),
                    },
                    ValueType::Bytes => {
                        return Err(format!(
                            "line {}: BYTES column '{}' cannot be ingested from CSV",
                            lineno + 2,
                            col.name
                        ))
                    }
                };
            values[slot] = Some(value);
        }
        records.push(Record::new(
            values.into_iter().map(Option::unwrap).collect(),
        ));
    }
    Ok(records)
}

/// Parses `--delete K[:R],K2[:R2],...` into delete mutations.
fn parse_deletes(spec: &str) -> Result<Vec<adp_core::owner::Mutation>, String> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|item| {
            let item = item.trim();
            let (key, replica) = match item.split_once(':') {
                Some((k, r)) => (
                    k.trim().parse().map_err(|_| format!("bad key '{k}'"))?,
                    r.trim().parse().map_err(|_| format!("bad replica '{r}'"))?,
                ),
                None => (item.parse().map_err(|_| format!("bad key '{item}'"))?, 0u32),
            };
            Ok(adp_core::owner::Mutation::Delete { key, replica })
        })
        .collect()
}

fn cmd_ingest(flags: &Flags) -> Result<(), String> {
    let store_dir = need(flags, "store")?;
    let seed: u64 = flags.get("seed").map_or(Ok(0xCAFE), |s| {
        s.parse().map_err(|_| "bad --seed".to_string())
    })?;
    let bits: usize = flags.get("bits").map_or(Ok(1024), |s| {
        s.parse().map_err(|_| "bad --bits".to_string())
    })?;

    let mut store = adp_store::Store::open(store_dir).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = Owner::new(bits, &mut rng);
    if owner.public_key() != store.table().public_key() {
        return Err(
            "the regenerated keypair does not match the store's owner key — \
             pass the same --seed and --bits used at publish time"
                .into(),
        );
    }

    let mut ops = Vec::new();
    if let Some(del) = flags.get("delete").filter(|s| !s.is_empty()) {
        ops.extend(parse_deletes(del)?);
    }
    if let Some(csv_path) = flags.get("csv").filter(|s| !s.is_empty()) {
        let schema = store.table().table().schema().clone();
        for record in records_for_schema(Path::new(csv_path), &schema)? {
            ops.push(adp_core::owner::Mutation::Insert(record));
        }
    }
    if ops.is_empty() {
        return Err("nothing to ingest: pass --csv and/or --delete".into());
    }
    let total = ops.len();
    let start = std::time::Instant::now();
    let report = store.apply_batch(&owner, ops).map_err(|e| e.to_string())?;
    println!(
        "ingested {total} mutation(s) in {:.3}s: {} signatures recomputed \
         ({} g digests) — O(k) neighborhoods, not O(n); table now {} rows, \
         log {} record(s)",
        start.elapsed().as_secs_f64(),
        report.signatures_recomputed,
        report.g_recomputed,
        store.table().len(),
        store.log_record_count(),
    );
    Ok(())
}

// ----------------------------------------------------------- compact

fn cmd_compact(flags: &Flags) -> Result<(), String> {
    let store_dir = need(flags, "store")?;
    let mut store = adp_store::Store::open(store_dir).map_err(|e| e.to_string())?;
    let folded = store.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted {}: folded {folded} log record(s) into a fresh snapshot \
         ({} rows, next seq {})",
        store.dir().display(),
        store.table().len(),
        store.next_seq(),
    );
    Ok(())
}

// ---------------------------------------------------------------- compare

/// Thin wrapper over `adp_bench::compare` — the scheme-comparison
/// harness that regenerates (and `--check`s) `docs/EVALUATION.md` and
/// `BENCH_PR5.json`. Flags are passed through verbatim.
fn cmd_compare(args: &[String]) -> Result<(), String> {
    let opts = adp_bench::compare::parse_args(args)?;
    adp_bench::compare::run(&opts)
}

// ----------------------------------------------------------------- rquery

fn cmd_rquery(flags: &Flags) -> Result<(), String> {
    let addr = need(flags, "addr")?;
    let cert_path = PathBuf::from(need(flags, "cert")?);
    let (a, b) = parse_range_pair(need(flags, "range")?)?;
    let table_id = parse_u32_flag(flags, "table", 0)?;
    let projection = parse_projection(flags);

    let cert_bytes = fs::read(&cert_path).map_err(|e| e.to_string())?;
    let cert = wire::decode_certificate(&cert_bytes).map_err(|e| e.to_string())?;
    let query = SelectQuery {
        range: KeyRange::closed(a, b),
        filters: Vec::new(),
        projection,
        distinct: false,
    };
    let mut user = adp_server::RemoteVerifier::connect(addr, cert, table_id)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let (verified, result_bytes, vo_bytes) = user
        .select_with_bytes(&query)
        .map_err(|e| format!("REJECTED: {e}"))?;
    println!(
        "VERIFIED: {} rows are the complete, authentic answer to [{a}, {b}] \
         ({} signature(s) checked, {} result bytes + {} VO bytes over the wire)",
        verified.rows.len(),
        verified.report.signatures_verified,
        verified.result_bytes,
        verified.vo_bytes,
    );
    if let Some(out) = flags.get("out").filter(|s| !s.is_empty()) {
        // Persist the answer in the same layout `query` writes, so
        // `adp verify --answer` can re-check it offline later.
        let out = PathBuf::from(out);
        write_answer_dir(&out, &verified.rows, &result_bytes, &vo_bytes)?;
        println!("wrote verified result to {}", out.display());
    }
    Ok(())
}

// ------------------------------------------------------------ follow

/// `adp follow` — run a verifying mirror (docs/PROTOCOL.md §9): bootstrap
/// a local store from the upstream's audited snapshot (or resume an
/// existing one from its own sequence head), replay the owner-signed
/// update log over the wire, and serve the mirror locally. Every record
/// is signature-verified against the certificate's owner key before it
/// touches the store, so the upstream publisher stays untrusted.
///
/// With `--retry N` the mirror self-heals: a dropped upstream connection
/// reconnects with capped exponential backoff, resuming from the
/// mirror's own sequence cursor — reconnection re-fetches bytes, never
/// relaxes verification.
fn cmd_follow(flags: &Flags) -> Result<(), CliError> {
    use adp_server::follow::{apply_segment, bootstrap_store};
    use adp_server::{FollowError, FollowEvent, ResilientFollower};

    let addr = need(flags, "addr")?;
    let cert_path = PathBuf::from(need(flags, "cert")?);
    let store_dir = PathBuf::from(need(flags, "store")?);
    let table_id = parse_u32_flag(flags, "table", 0)?;
    let serve_addr = flags
        .get("serve-addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4171");
    let retry = parse_retry_policy(flags)?;
    let budget = retry.max_retries;

    let cert_bytes = fs::read(&cert_path).map_err(|e| e.to_string())?;
    let cert = wire::decode_certificate(&cert_bytes).map_err(|e| e.to_string())?;

    let classify = |e: FollowError| -> CliError {
        if e.is_retryable() {
            CliError::Exhausted(format!("follow stream failed, retries exhausted: {e}"))
        } else {
            CliError::Fatal(format!("REJECTED: {e}"))
        }
    };

    let mut follower = ResilientFollower::new(addr, table_id, retry)
        .map_err(|e| format!("resolving {addr}: {e}"))?;
    // Live segments can legitimately be hours apart: block until one
    // arrives (damage still surfaces as a connection error → reconnect).
    follower.set_segment_timeout(None);

    // A dir that already holds a snapshot is a mirror to resume; anything
    // else is a fresh bootstrap.
    let resume = store_dir.join(adp_store::SNAPSHOT_FILE).exists();
    let (store, backlog) = if resume {
        let store = adp_store::Store::open(&store_dir).map_err(|e| e.to_string())?;
        let have = store.next_seq();
        match follower.next_event(Some(have)) {
            Ok(FollowEvent::Backlog(backlog)) => (store, backlog),
            Ok(_) => {
                return Err(CliError::Fatal(format!(
                    "upstream compacted its log past seq {have}; re-bootstrap into an \
                     empty --store dir"
                )))
            }
            Err(e) => return Err(classify(e)),
        }
    } else {
        let snapshot = match follower.next_event(None) {
            Ok(FollowEvent::Snapshot(snapshot)) => snapshot,
            Ok(_) => {
                return Err(CliError::Fatal(
                    "upstream sent a log segment for a fresh bootstrap".into(),
                ))
            }
            Err(e) => return Err(classify(e)),
        };
        let store = bootstrap_store(&store_dir, &snapshot, &cert.public_key)
            .map_err(|e| CliError::Fatal(format!("REJECTED bootstrap: {e}")))?;
        println!(
            "bootstrapped {} rows at seq {} into {} (snapshot key-checked and audited)",
            store.table().len(),
            store.next_seq(),
            store_dir.display(),
        );
        (store, Vec::new())
    };

    let mut server = adp_server::Server::new(adp_server::ServerConfig::default());
    server.add_store(table_id, store);
    let handle = server.serve(serve_addr).map_err(|e| e.to_string())?;
    let mut head = apply_segment(&handle, table_id, &backlog)
        .map_err(|e| CliError::Fatal(format!("REJECTED: {e}")))?;
    println!(
        "mirroring table {table_id} from {addr} on {} — caught up at seq {head} \
         (every record verified before serving; retry budget {budget}; stop with ctrl-c)",
        handle.addr(),
    );
    loop {
        let records = match follower.next_event(Some(head)) {
            // A live segment, or a reconnect's resumed backlog: both are
            // framed records that go through the same verification.
            Ok(FollowEvent::Segment(records)) | Ok(FollowEvent::Backlog(records)) => records,
            Ok(FollowEvent::Snapshot(_)) => {
                return Err(CliError::Fatal(format!(
                    "upstream compacted its log past seq {head}; re-bootstrap into an \
                     empty --store dir"
                )))
            }
            Err(e) => return Err(classify(e)),
        };
        head = apply_segment(&handle, table_id, &records)
            .map_err(|e| CliError::Fatal(format!("REJECTED: {e}")))?;
        println!(
            "applied verified segment — head seq {head} ({} reconnect(s))",
            follower.reconnects(),
        );
    }
}

// --------------------------------------------------------- subscribe

/// `adp subscribe` — hold a live range subscription (docs/PROTOCOL.md
/// §10): the initial answer and every pushed delta are verified against
/// the certificate before the local mirror is updated, so the terminal
/// only ever shows owner-authenticated state.
///
/// With `--retry N` the subscription self-heals: a dropped connection or
/// a server `ResyncRequired` push (§11 — a delta outgrew the frame
/// limit) reconnects and re-subscribes, and the fresh baseline is
/// verified against the certificate and refused if it is older than
/// what the mirror already verified.
fn cmd_subscribe(flags: &Flags) -> Result<(), CliError> {
    let addr = need(flags, "addr")?;
    let cert_path = PathBuf::from(need(flags, "cert")?);
    let (a, b) = parse_range_pair(need(flags, "range")?)?;
    let table_id = parse_u32_flag(flags, "table", 0)?;
    let sub_id = parse_u32_flag(flags, "sub", 1)?;
    let retry = parse_retry_policy(flags)?;
    let max_deltas = flags
        .get("deltas")
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u64>().map_err(|_| format!("bad --deltas '{s}'")))
        .transpose()?;

    let cert_bytes = fs::read(&cert_path).map_err(|e| e.to_string())?;
    let cert = wire::decode_certificate(&cert_bytes).map_err(|e| e.to_string())?;
    let mut sub = adp_server::RemoteSubscriber::subscribe_with_retry(
        addr,
        cert,
        table_id,
        sub_id,
        KeyRange::closed(a, b),
        retry,
    )
    .map_err(|e| classify_remote(e, "subscribe"))?;
    println!(
        "SUBSCRIBED: [{a}, {b}] on table {table_id} — {} verified rows at epoch {} \
         ({} signature(s) checked)",
        sub.rows().count(),
        sub.epoch(),
        sub.stats().signatures_verified,
    );

    let mut seen = 0u64;
    loop {
        let delta = sub
            .poll_delta(std::time::Duration::from_secs(1))
            .map_err(|e| classify_remote(e, "subscription"))?;
        if let Some(epoch) = delta {
            seen += 1;
            println!(
                "DELTA VERIFIED: epoch {epoch} — mirror now {} rows ({} delta(s), \
                 {} reconnect(s), {} resync(s))",
                sub.rows().count(),
                seen,
                sub.reconnects(),
                sub.resyncs(),
            );
            if Some(seen) == max_deltas {
                let (reconnects, resyncs) = (sub.reconnects(), sub.resyncs());
                sub.unsubscribe()
                    .map_err(|e| format!("unsubscribe failed: {e}"))?;
                println!(
                    "UNSUBSCRIBED after {seen} delta(s) ({reconnects} reconnect(s), \
                     {resyncs} resync(s))"
                );
                return Ok(());
            }
        }
    }
}
