//! The snapshot format: a versioned, CRC-framed image of a [`SignedTable`].
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "ADPS" (0x41 0x44 0x50 0x53)
//! 4       2     format version, u16 LE (currently 1)
//! 6       8     base_seq, u64 LE — sequence number of the first update-log
//!               record that applies on top of this snapshot
//! 14      4     CRC-32 of bytes 0..14
//! ```
//!
//! followed by exactly three sections, in this order:
//!
//! ```text
//! tag 0x01  CERT  adp_core::wire::encode_certificate bytes
//!                 (table name, schema, domain, scheme config, public key)
//! tag 0x02  ROWS  adp_core::wire::encode_records bytes (table rows in
//!                 (key, replica) order)
//! tag 0x03  SIGS  adp_core::wire::encode_signatures bytes (chain
//!                 positions 0..=n+1)
//! ```
//!
//! each framed as `u8 tag · u32 LE length · payload · u32 LE CRC-32(tag ‖
//! length ‖ payload)`. Every byte of the file is covered by a checksum, so
//! any single-bit corruption is a guaranteed typed error. Decoding rejects
//! trailing bytes. `docs/STORAGE.md` carries the same specification with a
//! worked example.
//!
//! The snapshot deliberately stores no digests: `g(r)`, the rep-MHT roots
//! and the link digests are all recomputed by
//! [`SignedTable::from_parts`] at load time, which is what makes a
//! reloaded table *byte-identical* to the in-memory original — the only
//! owner-private material, the signatures, is stored verbatim.

use crate::crc32::crc32_multi;
use crate::StoreError;
use adp_core::owner::Certificate;
use adp_core::prelude::SignedTable;
use adp_core::wire;
use adp_crypto::Signature;
use adp_relation::{Record, Table};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ADPS";

/// Snapshot format version written (and the only one read) by this build.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Fixed header length (magic + version + base_seq + header CRC).
pub const SNAPSHOT_HEADER_LEN: usize = 18;

const SEC_CERT: u8 = 0x01;
const SEC_ROWS: u8 = 0x02;
const SEC_SIGS: u8 = 0x03;

/// Hard cap on a single section payload (a snapshot section holding more
/// than this is refused before allocation).
pub const MAX_SECTION_LEN: u32 = 1 << 30; // 1 GiB

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let len = (payload.len() as u32).to_le_bytes();
    out.push(tag);
    out.extend_from_slice(&len);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32_multi(&[&[tag], &len, payload]).to_le_bytes());
}

/// Encodes a snapshot of `st` with the given `base_seq`.
pub fn encode_snapshot(st: &SignedTable, base_seq: u64) -> Vec<u8> {
    let cert = Certificate {
        table_name: st.table().name().to_string(),
        schema: st.table().schema().clone(),
        domain: *st.domain(),
        config: *st.config(),
        public_key: st.public_key().clone(),
    };
    let rows: Vec<Record> = st.table().rows().iter().map(|r| r.record.clone()).collect();
    let sigs: Vec<Signature> = (0..st.chain_len())
        .map(|i| st.entry(i).signature.clone())
        .collect();

    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&base_seq.to_le_bytes());
    let header_crc = crc32_multi(&[&out]);
    out.extend_from_slice(&header_crc.to_le_bytes());

    push_section(&mut out, SEC_CERT, &wire::encode_certificate(&cert));
    push_section(&mut out, SEC_ROWS, &wire::encode_records(&rows));
    push_section(&mut out, SEC_SIGS, &wire::encode_signatures(&sigs));
    out
}

/// Reads one section, returning `(payload, rest)`.
fn read_section<'a>(
    bytes: &'a [u8],
    want_tag: u8,
    context: &'static str,
) -> Result<(&'a [u8], &'a [u8]), StoreError> {
    if bytes.len() < 5 {
        return Err(StoreError::Truncated { context });
    }
    let tag = bytes[0];
    if tag != want_tag {
        return Err(StoreError::BadSection { context });
    }
    let len = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
    if len > MAX_SECTION_LEN {
        return Err(StoreError::BadSection { context });
    }
    let len = len as usize;
    if bytes.len() < 5 + len + 4 {
        return Err(StoreError::Truncated { context });
    }
    let payload = &bytes[5..5 + len];
    let stored = u32::from_le_bytes(bytes[5 + len..5 + len + 4].try_into().unwrap());
    if crc32_multi(&[&bytes[..5], payload]) != stored {
        return Err(StoreError::CrcMismatch { context });
    }
    Ok((payload, &bytes[5 + len + 4..]))
}

/// Decodes a snapshot, reconstructing the [`SignedTable`] (all digests
/// recomputed) and returning it with the snapshot's `base_seq`.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SignedTable, u64), StoreError> {
    const HDR: &str = "snapshot header";
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(StoreError::Truncated { context: HDR });
    }
    if bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic { context: HDR });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::BadVersion {
            context: HDR,
            got: version,
        });
    }
    let base_seq = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
    let stored = u32::from_le_bytes(bytes[14..18].try_into().unwrap());
    if crc32_multi(&[&bytes[..14]]) != stored {
        return Err(StoreError::CrcMismatch { context: HDR });
    }

    let rest = &bytes[SNAPSHOT_HEADER_LEN..];
    let (cert_bytes, rest) = read_section(rest, SEC_CERT, "snapshot CERT section")?;
    let (rows_bytes, rest) = read_section(rest, SEC_ROWS, "snapshot ROWS section")?;
    let (sigs_bytes, rest) = read_section(rest, SEC_SIGS, "snapshot SIGS section")?;
    if !rest.is_empty() {
        return Err(StoreError::TrailingBytes {
            context: "snapshot",
        });
    }

    let cert = wire::decode_certificate(cert_bytes)?;
    let rows = wire::decode_records(rows_bytes)?;
    let sigs = wire::decode_signatures(sigs_bytes)?;
    let table = Table::from_records(cert.table_name.clone(), cert.schema.clone(), rows)
        .map_err(adp_core::owner::OwnerError::from)?;
    let st = SignedTable::from_parts(table, cert.domain, cert.config, sigs, cert.public_key)?;
    Ok((st, base_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_core::prelude::*;
    use adp_relation::{Column, Schema, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> SignedTable {
        let mut rng = StdRng::seed_from_u64(0x5704);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("v", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("snap", schema);
        for i in 0..8i64 {
            t.insert(Record::new(vec![
                Value::Int(10 + i * 7),
                Value::from(format!("r{i}")),
            ]))
            .unwrap();
        }
        owner
            .sign_table(t, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap()
    }

    #[test]
    fn roundtrip_reconstructs_byte_identically() {
        let st = sample();
        let bytes = encode_snapshot(&st, 42);
        let (loaded, base_seq) = decode_snapshot(&bytes).unwrap();
        assert_eq!(base_seq, 42);
        assert!(loaded.audit());
        assert_eq!(loaded.chain_len(), st.chain_len());
        for p in 0..st.chain_len() {
            assert_eq!(loaded.g_bytes(p), st.g_bytes(p), "g at {p}");
            assert_eq!(
                loaded.entry(p).signature.to_bytes(),
                st.entry(p).signature.to_bytes(),
                "signature at {p}"
            );
        }
        // Deterministic encoding: re-encoding the reload is bit-identical.
        assert_eq!(encode_snapshot(&loaded, 42), bytes);
    }

    #[test]
    fn header_corruptions_are_typed_errors() {
        let st = sample();
        let bytes = encode_snapshot(&st, 0);

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_snapshot(&bad),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad = bytes.clone();
        bad[4] = 0xEE;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(StoreError::BadVersion { got: 0xEE, .. })
        ));

        let mut bad = bytes.clone();
        bad[8] ^= 0x01; // base_seq byte — caught by the header CRC
        assert!(matches!(
            decode_snapshot(&bad),
            Err(StoreError::CrcMismatch { .. })
        ));

        assert!(matches!(
            decode_snapshot(&bytes[..SNAPSHOT_HEADER_LEN - 1]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn section_corruptions_are_typed_errors() {
        let st = sample();
        let bytes = encode_snapshot(&st, 0);

        // Flip a byte inside the first section's payload.
        let mut bad = bytes.clone();
        bad[SNAPSHOT_HEADER_LEN + 10] ^= 0x40;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(StoreError::CrcMismatch { .. })
        ));

        // Wrong section tag.
        let mut bad = bytes.clone();
        bad[SNAPSHOT_HEADER_LEN] = 0x07;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(StoreError::BadSection { .. })
        ));

        // Truncation anywhere in the body errors.
        for cut in [SNAPSHOT_HEADER_LEN + 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut}");
        }

        // Trailing garbage is rejected.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            decode_snapshot(&bad),
            Err(StoreError::TrailingBytes { .. })
        ));
    }
}
