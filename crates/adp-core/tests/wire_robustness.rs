//! Robustness of the wire codec under adversarial bytes: decoding must
//! never panic, and any mutation that still decodes must fail
//! verification. The publisher controls every VO byte, so this is part of
//! the threat model, not just hygiene.

use adp_core::prelude::*;
use adp_core::wire;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

type Fixture = (SignedTable, Certificate, SelectQuery, Vec<u8>, Vec<u8>);

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x31BE);
        let owner = Owner::new(512, &mut rng);
        let schema = Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("v", ValueType::Text),
            ],
            "k",
        );
        let mut t = Table::new("wire", schema);
        for i in 0..30i64 {
            t.insert(Record::new(vec![
                Value::Int(i * 10 + 5),
                Value::from(format!("r{i}")),
            ]))
            .unwrap();
        }
        let st = owner
            .sign_table(t, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let cert = owner.certificate(&st);
        let query = SelectQuery::range(KeyRange::closed(50, 150));
        let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        let vo_bytes = wire::encode_vo(&vo);
        let result_bytes = wire::encode_records(&result);
        (st, cert, query, result_bytes, vo_bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_vo_never_panics_on_mutation(pos in 0usize..4096, byte: u8) {
        let (_, _, _, _, vo_bytes) = fixture();
        let mut bytes = vo_bytes.clone();
        let idx = pos % bytes.len();
        bytes[idx] = byte;
        // Must not panic; outcome (Ok/Err) is free.
        let _ = wire::decode_vo(&bytes);
    }

    #[test]
    fn decode_vo_never_panics_on_truncation(cut in 0usize..4096) {
        let (_, _, _, _, vo_bytes) = fixture();
        let cut = cut % (vo_bytes.len() + 1);
        let _ = wire::decode_vo(&vo_bytes[..cut]);
    }

    #[test]
    fn decode_vo_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::decode_vo(&bytes);
        let _ = wire::decode_records(&bytes);
    }

    #[test]
    fn mutated_vo_bytes_never_verify(pos in 0usize..4096, byte: u8) {
        let (_, cert, query, result_bytes, vo_bytes) = fixture();
        let mut bytes = vo_bytes.clone();
        let idx = pos % bytes.len();
        prop_assume!(bytes[idx] != byte);
        bytes[idx] = byte;
        // Either the mutation breaks decoding, or the decoded VO must fail
        // verification (the signatures cover every semantic byte).
        if let Ok((_, report)) = verify_select_wire(cert, query, result_bytes, &bytes) {
            // The only mutations that may survive are in bytes whose value
            // does not reach any check: our codec has none (length fields,
            // digests, signatures, tags are all load-bearing), so reaching
            // here is a soundness bug.
            prop_assert!(false, "mutated VO verified: {report:?} (byte {idx} -> {byte:#x})");
        }
    }

    #[test]
    fn mutated_result_bytes_never_verify(pos in 0usize..4096, byte: u8) {
        let (_, cert, query, result_bytes, vo_bytes) = fixture();
        let mut bytes = result_bytes.clone();
        let idx = pos % bytes.len();
        prop_assume!(bytes[idx] != byte);
        bytes[idx] = byte;
        if verify_select_wire(cert, query, &bytes, vo_bytes).is_ok() {
            prop_assert!(false, "mutated result verified (byte {idx} -> {byte:#x})");
        }
    }
}

#[test]
fn unmutated_fixture_verifies() {
    let (_, cert, query, result_bytes, vo_bytes) = fixture();
    let (rows, report) = verify_select_wire(cert, query, result_bytes, vo_bytes).unwrap();
    assert_eq!(rows.len(), report.matched);
    assert!(report.matched > 0);
}
