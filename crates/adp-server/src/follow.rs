//! The log-shipping follower: a second `adp-server` that mirrors an
//! owner's publisher over the wire with **zero trust in either side**.
//!
//! The follower bootstraps from a [`Frame::Snapshot`] — authenticated by
//! checking the embedded public key against the certificate it already
//! holds and re-running the full `O(n)` signature audit — then replays
//! the owner-signed update log shipped as [`Frame::LogSegment`]s. Every
//! replayed record passes through [`ServerHandle::apply_update`], whose
//! store verifies the batch's re-signed chain signatures before anything
//! is persisted or served: a tampered record (flipped signature byte,
//! reordered or dropped mutation) is rejected *before* the follower's
//! epoch bumps, so its own subscribers never see the forgery. The mirror
//! converges to the owner's exact snapshot — same chain, same signatures
//! — and answers queries whose VOs verify against the owner's public key,
//! exactly as the paper's multi-publisher story requires (Section 1: any
//! number of untrusted mirrors, one signing owner).

use crate::client::DEFAULT_REPLY_TIMEOUT;
use crate::protocol::{read_frame, write_frame, ErrorCode, Frame, ProtoError};
use crate::retry::RetryPolicy;
use crate::server::{ServerHandle, UpdateError};
use adp_crypto::PublicKey;
use adp_store::format::decode_snapshot;
use adp_store::log::decode_records;
use adp_store::{Store, StoreError};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

/// Why following failed.
#[derive(Debug)]
pub enum FollowError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The upstream answered with an error frame.
    Server {
        /// Error code from the upstream.
        code: ErrorCode,
        /// Upstream-provided detail.
        message: String,
    },
    /// The upstream answered with a frame of the wrong type (or for the
    /// wrong table).
    UnexpectedFrame(&'static str),
    /// The bootstrap snapshot's public key is not the owner's: the
    /// upstream is serving a different (or forged) table.
    KeyMismatch,
    /// The bootstrap snapshot failed the full signature audit: the
    /// upstream shipped data it cannot prove.
    AuditFailed,
    /// A shipped record skipped ahead of the mirror's sequence — records
    /// were dropped or reordered in flight. Reconnect and resume from
    /// `expected` (the [`FollowError::Gap::expected`] value is exactly the
    /// `have` to hand [`LogFollower::connect`]).
    Gap {
        /// The sequence the mirror needs next.
        expected: u64,
        /// The sequence that actually arrived.
        got: u64,
    },
    /// The upstream re-sent a snapshot mid-stream (its log was compacted
    /// past our position); the mirror must re-bootstrap from scratch.
    ResyncRequired,
    /// The local mirror store refused the data (decode failure, CRC
    /// mismatch, or — the important case — signature verification failure
    /// on a tampered record).
    Store(StoreError),
    /// The local serving handle refused the replayed batch.
    Update(UpdateError),
}

impl fmt::Display for FollowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FollowError::Proto(e) => write!(f, "protocol error: {e}"),
            FollowError::Server { code, message } => {
                write!(f, "upstream error ({code}): {message}")
            }
            FollowError::UnexpectedFrame(detail) => write!(f, "unexpected frame: {detail}"),
            FollowError::KeyMismatch => {
                write!(
                    f,
                    "bootstrap snapshot is not signed by the expected owner key"
                )
            }
            FollowError::AuditFailed => {
                write!(f, "bootstrap snapshot failed the signature audit")
            }
            FollowError::Gap { expected, got } => {
                write!(f, "log gap: expected seq {expected}, got {got}")
            }
            FollowError::ResyncRequired => {
                write!(
                    f,
                    "upstream compacted past our position; re-bootstrap required"
                )
            }
            FollowError::Store(e) => write!(f, "mirror store rejected the data: {e}"),
            FollowError::Update(e) => write!(f, "mirror refused the replayed batch: {e}"),
        }
    }
}

impl FollowError {
    /// Whether reconnecting (and resuming from the mirror's own cursor)
    /// could fix this. Transport failures, framing desyncs, gaps,
    /// compaction resyncs, and an upstream-reported `BadFrame` (the
    /// upstream could not parse what arrived — transport damage seen
    /// from the other side) are all cured by a fresh `FollowLog`
    /// handshake; a key mismatch, failed audit, or store rejection is
    /// **fatal** — the data itself is wrong, and fetching it again
    /// cannot help.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FollowError::Proto(_)
                | FollowError::UnexpectedFrame(_)
                | FollowError::Gap { .. }
                | FollowError::ResyncRequired
                | FollowError::Server {
                    code: ErrorCode::BadFrame,
                    ..
                }
        )
    }
}

impl std::error::Error for FollowError {}

impl From<ProtoError> for FollowError {
    fn from(e: ProtoError) -> Self {
        FollowError::Proto(e)
    }
}

impl From<io::Error> for FollowError {
    fn from(e: io::Error) -> Self {
        FollowError::Proto(ProtoError::Io(e))
    }
}

impl From<StoreError> for FollowError {
    fn from(e: StoreError) -> Self {
        FollowError::Store(e)
    }
}

impl From<UpdateError> for FollowError {
    fn from(e: UpdateError) -> Self {
        FollowError::Update(e)
    }
}

/// What the [`LogFollower::connect`] handshake produced.
pub enum FollowStart {
    /// The resume point was accepted: the backlog of framed log records
    /// from `have` to the upstream's head (empty when fully caught up).
    /// Apply it with [`apply_segment`], then stream live segments.
    Backlog(Vec<u8>),
    /// A full bootstrap snapshot: either `have` was `None`, or the
    /// upstream compacted its log past `have`. Authenticate and persist
    /// it with [`bootstrap_store`].
    Snapshot(Vec<u8>),
}

/// One follower connection to an upstream publisher: the handshake plus a
/// blocking stream of [`Frame::LogSegment`]s.
pub struct LogFollower {
    stream: TcpStream,
    table_id: u32,
}

impl LogFollower {
    /// Connects and performs the `FollowLog` handshake. `have` is the
    /// lowest log sequence the mirror still needs (its store's
    /// `next_seq`), or `None` for a fresh bootstrap.
    pub fn connect(
        addr: impl ToSocketAddrs,
        table_id: u32,
        have: Option<u64>,
    ) -> Result<(LogFollower, FollowStart), FollowError> {
        Self::connect_with_timeout(addr, table_id, have, DEFAULT_REPLY_TIMEOUT)
    }

    /// [`LogFollower::connect`] with an explicit handshake patience: how
    /// long to wait for the `LogSegment`/`Snapshot` reply before giving
    /// up on this connection. Self-healing loops want this much shorter
    /// than the default so a swallowed reply costs one backoff step, not
    /// thirty seconds.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        table_id: u32,
        have: Option<u64>,
        reply_timeout: Duration,
    ) -> Result<(LogFollower, FollowStart), FollowError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_write_timeout(Some(reply_timeout))?;
        stream.set_read_timeout(Some(reply_timeout))?;
        write_frame(&mut stream, &Frame::FollowLog { table_id, have }).map_err(ProtoError::Io)?;
        let start = match read_frame(&mut stream)? {
            Frame::LogSegment {
                table_id: tid,
                records,
            } if tid == table_id => FollowStart::Backlog(records),
            Frame::Snapshot {
                table_id: tid,
                snapshot,
            } if tid == table_id => FollowStart::Snapshot(snapshot),
            Frame::Error { code, message } => return Err(FollowError::Server { code, message }),
            _ => {
                return Err(FollowError::UnexpectedFrame(
                    "expected LogSegment or Snapshot for the followed table",
                ))
            }
        };
        Ok((LogFollower { stream, table_id }, start))
    }

    /// Sets the patience for the next live segment (`None` waits forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Blocks for the next live [`Frame::LogSegment`], returning its
    /// framed records. A mid-stream [`Frame::Snapshot`] means the
    /// upstream can no longer serve our position:
    /// [`FollowError::ResyncRequired`].
    pub fn next_segment(&mut self) -> Result<Vec<u8>, FollowError> {
        match read_frame(&mut self.stream)? {
            Frame::LogSegment {
                table_id: tid,
                records,
            } if tid == self.table_id => Ok(records),
            Frame::Snapshot { .. } => Err(FollowError::ResyncRequired),
            Frame::Error { code, message } => Err(FollowError::Server { code, message }),
            _ => Err(FollowError::UnexpectedFrame(
                "expected LogSegment for the followed table",
            )),
        }
    }
}

/// What [`ResilientFollower::next_event`] produced.
pub enum FollowEvent {
    /// A fresh (re)connect's handshake answered with backlog from the
    /// `have` cursor: framed records to apply with [`apply_segment`].
    Backlog(Vec<u8>),
    /// A fresh (re)connect's handshake answered with a bootstrap snapshot
    /// (no cursor, or the upstream compacted past it): authenticate with
    /// [`bootstrap_store`].
    Snapshot(Vec<u8>),
    /// A live [`Frame::LogSegment`] on the established stream.
    Segment(Vec<u8>),
}

/// A self-healing [`LogFollower`]: owns the upstream address and a
/// [`RetryPolicy`], and transparently reconnects — resuming from the
/// caller's `have` cursor — whenever the connection drops, the stream
/// desyncs, records gap, or the upstream compacts past the cursor.
///
/// The caller drives a simple loop: every call to
/// [`ResilientFollower::next_event`] yields the next thing to apply, and
/// the caller reports back its new cursor on the next call. Security is
/// unchanged from [`LogFollower`]: reconnection re-fetches data, and
/// every byte still passes the same signature verification before the
/// mirror applies it — a flaky network can delay convergence, never
/// corrupt it.
pub struct ResilientFollower {
    addrs: Vec<SocketAddr>,
    table_id: u32,
    retry: RetryPolicy,
    conn: Option<LogFollower>,
    segment_timeout: Option<Duration>,
    handshake_timeout: Duration,
    /// A handshake has succeeded at least once (later ones are
    /// reconnects).
    connected_once: bool,
    reconnects: u64,
}

impl ResilientFollower {
    /// Creates the follower (no connection yet; the first
    /// [`ResilientFollower::next_event`] connects).
    pub fn new(
        addr: impl ToSocketAddrs,
        table_id: u32,
        retry: RetryPolicy,
    ) -> io::Result<ResilientFollower> {
        Ok(ResilientFollower {
            addrs: addr.to_socket_addrs()?.collect(),
            table_id,
            retry,
            conn: None,
            segment_timeout: Some(DEFAULT_REPLY_TIMEOUT),
            handshake_timeout: DEFAULT_REPLY_TIMEOUT,
            connected_once: false,
            reconnects: 0,
        })
    }

    /// Patience for each live segment before `next_event` returns a
    /// timeout error (`None` waits forever).
    pub fn set_segment_timeout(&mut self, timeout: Option<Duration>) {
        self.segment_timeout = timeout;
    }

    /// Patience for the reconnect handshake's reply. Keep this bounded
    /// (unlike the segment timeout, which may be `None`): a swallowed
    /// handshake reply should cost one backoff step, not the default
    /// thirty seconds.
    pub fn set_handshake_timeout(&mut self, timeout: Duration) {
        self.handshake_timeout = timeout;
    }

    /// Reconnections performed so far (the first connect is not one).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drops the current connection; the next
    /// [`ResilientFollower::next_event`] performs a fresh handshake. Call
    /// after an error the *caller* detected (e.g. [`apply_segment`]
    /// returned a [`FollowError::Gap`]).
    pub fn reset(&mut self) {
        self.conn = None;
    }

    /// Produces the next event to apply, healing the connection as
    /// needed. `have` is the mirror's current cursor (its store's
    /// `next_seq`), or `None` before any bootstrap. Each call gets a
    /// fresh retry budget from the policy; exhausting it returns the last
    /// error, and a later call starts over.
    ///
    /// A read timeout (no segment arrived in the window) is returned as a
    /// [`FollowError::Proto`] I/O error with kind
    /// `WouldBlock`/`TimedOut`; callers polling a quiet upstream should
    /// treat that as "no news", not as damage (the connection is kept).
    pub fn next_event(&mut self, have: Option<u64>) -> Result<FollowEvent, FollowError> {
        let mut attempt = 0;
        loop {
            let had_conn = self.conn.is_some();
            let result = self.step(have);
            match result {
                // A quiet live-segment window on an established stream is
                // "no news", not damage: the connection is kept. A
                // *handshake* timing out is damage (the reply should be
                // prompt) and falls through to the retry arm below.
                Err(e) if had_conn && is_timeout(&e) => return Err(e),
                Ok(event) => return Ok(event),
                Err(e) if e.is_retryable() && attempt < self.retry.max_retries => {
                    self.conn = None;
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }

    /// One attempt: handshake if disconnected (yielding the handshake's
    /// backlog/snapshot), else read one live segment.
    fn step(&mut self, have: Option<u64>) -> Result<FollowEvent, FollowError> {
        match &mut self.conn {
            None => {
                let (mut follower, start) = LogFollower::connect_with_timeout(
                    &self.addrs[..],
                    self.table_id,
                    have,
                    self.handshake_timeout,
                )?;
                follower.set_timeout(self.segment_timeout)?;
                if self.connected_once {
                    self.reconnects += 1;
                }
                self.connected_once = true;
                self.conn = Some(follower);
                Ok(match start {
                    FollowStart::Backlog(records) => FollowEvent::Backlog(records),
                    FollowStart::Snapshot(snapshot) => FollowEvent::Snapshot(snapshot),
                })
            }
            Some(follower) => match follower.next_segment() {
                Ok(records) => Ok(FollowEvent::Segment(records)),
                Err(e) => Err(e),
            },
        }
    }
}

/// Whether this error is a quiet read window elapsing rather than damage.
fn is_timeout(e: &FollowError) -> bool {
    matches!(e, FollowError::Proto(ProtoError::Io(io)) if io.kind() == io::ErrorKind::WouldBlock || io.kind() == io::ErrorKind::TimedOut)
}

/// Authenticates a bootstrap snapshot and persists it as a fresh mirror
/// store at `dir`. The snapshot is **untrusted input**: it is accepted
/// only if its embedded public key equals the owner key the mirror
/// already holds *and* the full signature chain audits — the upstream
/// cannot seed the mirror with anything the owner didn't sign.
pub fn bootstrap_store(
    dir: impl AsRef<Path>,
    snapshot: &[u8],
    expected_key: &PublicKey,
) -> Result<Store, FollowError> {
    let (st, base_seq) = decode_snapshot(snapshot)?;
    if st.public_key() != expected_key {
        return Err(FollowError::KeyMismatch);
    }
    if !st.audit() {
        return Err(FollowError::AuditFailed);
    }
    Ok(Store::create_at(dir, st, base_seq)?)
}

/// Applies one segment's framed log records to the mirror's serving
/// handle. Already-applied records (`seq` below the mirror's head) are
/// skipped idempotently — resume overlap is harmless; a record skipping
/// *ahead* is a [`FollowError::Gap`] and nothing past it is applied.
///
/// Every applied record goes through [`ServerHandle::apply_update`]:
/// signatures are verified against the mirror's own chain state before
/// the record is logged, the table swapped, or the epoch bumped, so a
/// tampered record leaves the mirror (and its subscribers) untouched.
/// Returns the mirror's new head sequence.
pub fn apply_segment(
    handle: &ServerHandle,
    table_id: u32,
    records: &[u8],
) -> Result<u64, FollowError> {
    // For store-backed tables the serving epoch *is* the store's
    // `next_seq`: `add_store` seeds it so and both advance in lockstep.
    let mut head = handle
        .table_epoch(table_id)
        .ok_or(FollowError::Update(UpdateError::UnknownTable(table_id)))?;
    for rec in decode_records(records)? {
        if rec.seq < head {
            continue;
        }
        if rec.seq > head {
            return Err(FollowError::Gap {
                expected: head,
                got: rec.seq,
            });
        }
        head = handle.apply_update(table_id, &rec.ops, &rec.resigned)?;
    }
    Ok(head)
}
