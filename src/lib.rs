//! # adp
//!
//! Facade over the authenticated-data-publishing workspace — a Rust
//! reproduction of *"Verifying Completeness of Relational Query Results in
//! Data Publishing"* (Pang, Jain, Ramamritham, Tan — SIGMOD 2005), grown
//! into a servable system.
//!
//! Each member crate is re-exported under a short name:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`core`] | `adp-core` | Owner signing, publisher VOs, user verification |
//! | [`crypto`] | `adp-crypto` | Bigint/RSA/SHA-256/Merkle/chain substrate |
//! | [`relation`] | `adp-relation` | Schemas, sorted tables, queries, access control |
//! | [`baselines`] | `adp-baselines` | The schemes the paper compares against |
//! | [`server`] | `adp-server` | Threaded TCP publisher + remote verifier |
//! | [`store`] | `adp-store` | Durable snapshots + append-only update log |
//!
//! See `docs/ARCHITECTURE.md` for the data-flow picture,
//! `docs/PROTOCOL.md` for the wire protocol `server` speaks, and
//! `docs/STORAGE.md` for the on-disk formats `store` reads and writes.

pub use adp_baselines as baselines;
pub use adp_core as core;
pub use adp_crypto as crypto;
pub use adp_relation as relation;
pub use adp_server as server;
pub use adp_store as store;
