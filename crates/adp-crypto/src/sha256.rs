//! A from-scratch implementation of the SHA-256 cryptographic hash function
//! (FIPS 180-4).
//!
//! The paper treats its one-way hash `h(.)` as an abstract primitive
//! (examples given: MD5, SHA). No cryptographic crate is available in the
//! offline dependency set, so the primitive is implemented here and validated
//! against the NIST test vectors in the unit tests below.
//!
//! # Hot-path structure
//!
//! Hashing dominates the paper's owner and user cost models (`C_hash` per
//! chain step, per Merkle node, per FDH block), so the compression path is
//! engineered accordingly:
//!
//! * multi-block input is compressed **directly from the caller's slice** —
//!   no per-block copy into an intermediate buffer (only ragged head/tail
//!   bytes ever touch the internal buffer);
//! * on x86-64 CPUs with the SHA extensions, whole-block runs go through a
//!   hardware kernel built on `sha256rnds2`/`sha256msg1`/`sha256msg2`
//!   (runtime-detected once, scalar fallback everywhere else) — a ~3–5×
//!   speedup that feeds every chain, Merkle, and FDH operation above.
//!
//! Callers either feed bytes incrementally through [`Sha256::update`] or use
//! the one-shot [`sha256`] helper.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Compresses a run of whole 64-byte blocks from `data` into `state`,
/// dispatching to the hardware kernel when the CPU has one.
fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert!(data.len().is_multiple_of(64));
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        // SAFETY: `available()` verified the sha/ssse3/sse4.1 features.
        unsafe { shani::compress_blocks(state, data) };
        return;
    }
    compress_blocks_scalar(state, data);
}

/// Portable block compression (FIPS 180-4 §6.2.2), one block per iteration.
fn compress_blocks_scalar(state: &mut [u32; 8], data: &[u8]) {
    for block in data.chunks_exact(64) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// Hardware SHA-256 via the x86 SHA extensions (`sha256rnds2` executes two
/// rounds per instruction; `sha256msg1`/`sha256msg2` run the message
/// schedule). State is held in the ABEF/CDGH register split the
/// instructions expect; the prologue/epilogue shuffles translate to and
/// from the FIPS `a..h` word order.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use core::arch::x86_64::*;

    /// Whether the CPU exposes the needed extensions (detected once).
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("ssse3")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    /// # Safety
    /// The `sha`, `ssse3`, and `sse4.1` CPU features must be present
    /// (guaranteed by [`available`]). `data.len()` must be a multiple of 64.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], mut data: &[u8]) {
        // Per-32-bit-word big-endian → little-endian byte shuffle.
        let mask = _mm_set_epi64x(
            0x0c0d0e0f_08090a0b_u64 as i64,
            0x04050607_00010203_u64 as i64,
        );
        // Repack [a,b,c,d],[e,f,g,h] into ABEF / CDGH.
        let tmp = _mm_loadu_si128(state.as_ptr().cast());
        let st1 = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let tmp = _mm_shuffle_epi32(tmp, 0xB1);
        let st1 = _mm_shuffle_epi32(st1, 0x1B);
        let mut state0 = _mm_alignr_epi8(tmp, st1, 8);
        let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0);

        while data.len() >= 64 {
            let abef_save = state0;
            let cdgh_save = state1;

            // Four rounds: two sha256rnds2, feeding K+W pairs low then high.
            macro_rules! qrounds {
                ($k:expr, $w:expr) => {{
                    let kw = _mm_add_epi32($w, _mm_loadu_si128(K.as_ptr().add($k).cast()));
                    state1 = _mm_sha256rnds2_epu32(state1, state0, kw);
                    let kw = _mm_shuffle_epi32(kw, 0x0E);
                    state0 = _mm_sha256rnds2_epu32(state0, state1, kw);
                }};
            }
            // Next four schedule words:
            // w0 ← msg2( msg1(w0, w1) + (w3:w2 >> 32), w3 ).
            macro_rules! sched {
                ($w0:ident, $w1:ident, $w2:ident, $w3:ident) => {{
                    let t = _mm_alignr_epi8($w3, $w2, 4);
                    $w0 = _mm_sha256msg1_epu32($w0, $w1);
                    $w0 = _mm_add_epi32($w0, t);
                    $w0 = _mm_sha256msg2_epu32($w0, $w3);
                }};
            }

            let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(data.as_ptr().cast()), mask);
            let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(data.as_ptr().add(16).cast()), mask);
            let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(data.as_ptr().add(32).cast()), mask);
            let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(data.as_ptr().add(48).cast()), mask);

            qrounds!(0, w0);
            qrounds!(4, w1);
            qrounds!(8, w2);
            qrounds!(12, w3);
            sched!(w0, w1, w2, w3);
            qrounds!(16, w0);
            sched!(w1, w2, w3, w0);
            qrounds!(20, w1);
            sched!(w2, w3, w0, w1);
            qrounds!(24, w2);
            sched!(w3, w0, w1, w2);
            qrounds!(28, w3);
            sched!(w0, w1, w2, w3);
            qrounds!(32, w0);
            sched!(w1, w2, w3, w0);
            qrounds!(36, w1);
            sched!(w2, w3, w0, w1);
            qrounds!(40, w2);
            sched!(w3, w0, w1, w2);
            qrounds!(44, w3);
            sched!(w0, w1, w2, w3);
            qrounds!(48, w0);
            sched!(w1, w2, w3, w0);
            qrounds!(52, w1);
            sched!(w2, w3, w0, w1);
            qrounds!(56, w2);
            sched!(w3, w0, w1, w2);
            qrounds!(60, w3);

            state0 = _mm_add_epi32(state0, abef_save);
            state1 = _mm_add_epi32(state1, cdgh_save);
            data = &data[64..];
        }

        // Unpack ABEF / CDGH back to [a,b,c,d],[e,f,g,h].
        let tmp = _mm_shuffle_epi32(state0, 0x1B);
        let st1 = _mm_shuffle_epi32(state1, 0xB1);
        let abcd = _mm_blend_epi16(tmp, st1, 0xF0);
        let efgh = _mm_alignr_epi8(st1, tmp, 8);
        _mm_storeu_si128(state.as_mut_ptr().cast(), abcd);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), efgh);
    }
}

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes consumed so far.
    len: u64,
    /// Partially filled block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hash state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state. Whole 64-byte blocks are
    /// compressed straight from `data`; only ragged edges are buffered.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let whole = rest.len() & !63;
        if whole > 0 {
            compress_blocks(&mut self.state, &rest[..whole]);
            rest = &rest[whole..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finalizes the hash, returning the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // Append the 0x80 terminator, zero padding, and the 64-bit length.
        self.update_padding();
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress_blocks(&mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Writes the 0x80 marker and zeroes, compressing once if the length
    /// field does not fit in the current block.
    fn update_padding(&mut self) {
        self.buf[self.buf_len] = 0x80;
        for b in &mut self.buf[self.buf_len + 1..] {
            *b = 0;
        }
        if self.buf_len >= 56 {
            let block = self.buf;
            compress_blocks(&mut self.state, &block);
            self.buf = [0u8; 64];
        }
        self.buf_len = 0;
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST / FIPS 180-4 and commonly published reference vectors.

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn one_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&sha256(b"The quick brown fox jumps over the lazy dog")),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 127, 500] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Exercise message lengths around the 56-byte padding boundary.
        for len in 50..=70usize {
            let msg = vec![0xabu8; len];
            let d1 = sha256(&msg);
            let mut h = Sha256::new();
            h.update(&msg[..len / 2]);
            h.update(&msg[len / 2..]);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn scalar_matches_dispatched_kernel() {
        // Differential check of whichever kernel `compress_blocks` picked
        // (SHA-NI where present) against the portable implementation, over
        // 1..8-block runs of non-trivial data.
        for blocks in 1..=8usize {
            let data: Vec<u8> = (0..blocks * 64)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
                .collect();
            let mut fast = H0;
            let mut scalar = H0;
            compress_blocks(&mut fast, &data);
            compress_blocks_scalar(&mut scalar, &data);
            assert_eq!(fast, scalar, "blocks={blocks}");
        }
    }
}
