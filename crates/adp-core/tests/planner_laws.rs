//! Algebraic-law property suite pinning every planner pass.
//!
//! Each pass in `adp_core::passes` is held to its named relational-algebra
//! law over randomly generated statements, checking **two** properties per
//! case:
//!
//! 1. **Result multiset equality** — executing the rewritten plan returns
//!    exactly the same rows (as a multiset of (column, value) pairs; join
//!    reorientation may permute columns) and the same aggregate as the
//!    plan it rewrote.
//! 2. **Verifiability preservation** — the rewritten plan's answer still
//!    *verifies* against the owner certificates. A rewrite that produced
//!    unverifiable (or unexecutable) plans would be caught here even if
//!    its rows happened to match.
//!
//! The harness itself is mutation-tested: two deliberately broken passes
//! (one dropping a predicate, one widening a scan) must make the law check
//! fail — a law suite that cannot catch a planted bug pins nothing.

mod common;

use adp_core::passes::{
    DistinctElimination, FilterMerge, JoinOrder, Pass, PredicatePushdown, ProjectionPruning,
};
use adp_core::plan::{
    compute_plan_answer, encode_plan_answer, lower, physical, verify_plan, Catalog, CatalogTable,
    Plan, SqlRows,
};
use adp_core::prelude::*;
use adp_relation::check_referential_integrity;
use common::{dept_table, emp_by_dept};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    emp: SignedTable,
    dept: SignedTable,
    emp_cert: Certificate,
    dept_cert: Certificate,
    catalog: Catalog,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0x1A_55);
        let owner = Owner::new(512, &mut rng);
        let emp_raw = emp_by_dept();
        let dept_raw = dept_table();
        check_referential_integrity(&emp_raw, &dept_raw).unwrap();
        let emp = owner
            .sign_table(emp_raw, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let dept = owner
            .sign_table(dept_raw, Domain::new(0, 1_000), SchemeConfig::default())
            .unwrap();
        let emp_cert = owner.certificate(&emp);
        let dept_cert = owner.certificate(&dept);
        let mut catalog = Catalog::new();
        catalog.add(CatalogTable::from_certificate(0, &emp_cert, 6));
        catalog.add(CatalogTable::from_certificate(1, &dept_cert, 5));
        catalog.declare_fk("emp", "dept");
        Fixture {
            emp,
            dept,
            emp_cert,
            dept_cert,
            catalog,
        }
    })
}

/// Executes a logical plan the honest way — publisher answer, wire
/// encode, certificate verification, client-side finish — returning the
/// finished output. Any failure (unexecutable plan, unverifiable answer)
/// comes back as `Err`, which the law harness treats as a violation of
/// verifiability preservation.
fn execute(plan: &Plan) -> Result<SqlRows, String> {
    let fix = fixture();
    let phys = physical(plan, &fix.catalog).map_err(|e| format!("physical: {e}"))?;
    let answer = compute_plan_answer(&phys.wire, |id| match id {
        0 => Some(&fix.emp),
        1 => Some(&fix.dept),
        _ => None,
    })
    .map_err(|e| format!("answer: {e}"))?;
    let (result_bytes, vo_bytes) = encode_plan_answer(&answer);
    let verified = verify_plan(
        &phys.wire,
        |id| match id {
            0 => Some(&fix.emp_cert),
            1 => Some(&fix.dept_cert),
            _ => None,
        },
        &result_bytes,
        &vo_bytes,
    )
    .map_err(|e| format!("verify: {e}"))?;
    phys.finish(verified.rows)
        .map_err(|e| format!("finish: {e}"))
}

/// Canonical multiset form: each row becomes its sorted (column, value)
/// pairs, and the row list itself is sorted — insensitive to both column
/// permutation (join reorientation) and row order.
fn canon(out: &SqlRows) -> (Vec<Vec<(String, String)>>, Option<String>) {
    let mut rows: Vec<Vec<(String, String)>> = out
        .rows
        .iter()
        .map(|r| {
            let mut pairs: Vec<(String, String)> = out
                .columns
                .iter()
                .zip(r.values())
                .map(|(c, v)| (c.clone(), format!("{v:?}")))
                .collect();
            pairs.sort();
            pairs
        })
        .collect();
    rows.sort();
    (rows, out.aggregate.as_ref().map(|a| format!("{a:?}")))
}

/// The law check: applying `pass` to the lowered plan of `sql` must
/// preserve both executed results and verifiability.
fn check_pass(pass: &dyn Pass, sql: &str) -> Result<(), String> {
    let fix = fixture();
    let stmt = parse(sql).map_err(|e| format!("parse {sql:?}: {e}"))?;
    let plan = lower(&stmt, &fix.catalog).map_err(|e| format!("lower {sql:?}: {e}"))?;
    let rewritten = pass.apply(&plan, &fix.catalog);
    let pre = execute(&plan).map_err(|e| format!("{sql:?} pre-{}: {e}", pass.name()))?;
    let post = execute(&rewritten).map_err(|e| format!("{sql:?} post-{}: {e}", pass.name()))?;
    if canon(&pre) != canon(&post) {
        return Err(format!(
            "law '{}' violated on {sql:?}:\n  pre:  {:?}\n  post: {:?}",
            pass.law(),
            canon(&pre),
            canon(&post),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Statement generators
// ---------------------------------------------------------------------------

/// One WHERE conjunct over emp. Kind 3 (non-key) is excluded under
/// DISTINCT, where the lowering requires range-convertible key predicates.
fn emp_condition(kind: u8, a: i64, b: i64) -> String {
    match kind % 4 {
        0 => format!("dept >= {a}"),
        1 => format!("dept <= {b}"),
        2 => format!("dept BETWEEN {a} AND {b}"),
        _ => format!("id >= {}", a % 7),
    }
}

fn single_table_stmt((sel, distinct, conds): (u8, bool, Vec<(u8, i64, i64)>)) -> String {
    let select = match sel % 5 {
        0 => "*",
        1 => "name, dept",
        2 => "id, name",
        3 => "COUNT(*)",
        _ => "SUM(id)",
    };
    // DISTINCT composes with neither aggregates (grammar) nor non-key
    // predicates (lowering); keep generated statements inside the
    // supported language.
    let distinct = distinct && sel % 5 <= 2;
    let conds: Vec<String> = conds
        .iter()
        .map(|&(k, a, b)| emp_condition(if distinct { k % 3 } else { k }, a, b))
        .collect();
    let mut sql = format!(
        "SELECT {}{select} FROM emp",
        if distinct { "DISTINCT " } else { "" }
    );
    if !conds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
    }
    sql
}

/// A pk-fk join statement; `emp_first` controls the FROM order (the fk
/// side first, or the pk side first — the shape join-order must fix).
fn join_stmt(emp_first: bool, (sel, cond, a, b): (u8, u8, i64, i64)) -> String {
    let select = match sel % 4 {
        0 => "*",
        1 => "emp.name, dept.dname",
        2 => "COUNT(*)",
        _ => "SUM(dept.budget)",
    };
    let from = if emp_first {
        "emp INNER JOIN dept"
    } else {
        "dept INNER JOIN emp"
    };
    let mut sql = format!("SELECT {select} FROM {from} ON emp.dept = dept.dept");
    match cond % 4 {
        0 => {}
        1 => sql.push_str(&format!(" WHERE emp.dept BETWEEN {a} AND {b}")),
        2 => sql.push_str(&format!(" WHERE emp.dept >= {a}")),
        _ => sql.push_str(&format!(" WHERE dept.dept <= {b}")),
    }
    sql
}

fn single_parts() -> impl Strategy<Value = (u8, bool, Vec<(u8, i64, i64)>)> {
    (
        any::<u8>(),
        any::<bool>(),
        proptest::strategy::vec((any::<u8>(), 0i64..=45, 0i64..=60), 0..3),
    )
}

fn join_parts() -> impl Strategy<Value = (u8, u8, i64, i64)> {
    (any::<u8>(), any::<u8>(), 0i64..=45, 0i64..=60)
}

// ---------------------------------------------------------------------------
// The laws, one per pass (names mirror each pass's `law()` string)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// filter-merge: filter merge / selection commutativity.
    #[test]
    fn law_filter_merge_selection_commutativity(parts in single_parts()) {
        let sql = single_table_stmt(parts);
        if let Err(e) = check_pass(&FilterMerge, &sql) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// predicate-pushdown: selection pushdown — over both select chains
    /// and joins (where it transfers the inner range across the fk edge).
    #[test]
    fn law_selection_pushdown_single_table(parts in single_parts()) {
        let sql = single_table_stmt(parts);
        if let Err(e) = check_pass(&PredicatePushdown, &sql) {
            return Err(TestCaseError::fail(e));
        }
    }

    #[test]
    fn law_selection_pushdown_join(parts in join_parts()) {
        let sql = join_stmt(true, parts);
        if let Err(e) = check_pass(&PredicatePushdown, &sql) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// projection-pruning: projection pushdown / idempotence.
    #[test]
    fn law_projection_pushdown_idempotence(parts in single_parts()) {
        let sql = single_table_stmt(parts);
        if let Err(e) = check_pass(&ProjectionPruning, &sql) {
            return Err(TestCaseError::fail(e));
        }
        // Idempotence: a second application is a fixed point.
        let fix = fixture();
        let stmt = parse(&sql).unwrap();
        let plan = lower(&stmt, &fix.catalog).unwrap();
        let once = ProjectionPruning.apply(&plan, &fix.catalog);
        let twice = ProjectionPruning.apply(&once, &fix.catalog);
        // (A failure here prints both plans; the statement is in the seed.)
        prop_assert_eq!(&once, &twice);
    }

    /// distinct-elimination: distinct elimination on key-bearing output.
    #[test]
    fn law_distinct_elimination_on_key_bearing_output(parts in single_parts()) {
        let sql = single_table_stmt(parts);
        if let Err(e) = check_pass(&DistinctElimination, &sql) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// join-order: join commutativity over the declared pk-fk edge. The
    /// two FROM orders of the *same* components must agree after the pass
    /// reorients the fk side outward. (The pk-first naive plan is not
    /// executable — `answer_pkfk_join` requires the fk side outer — so
    /// the reference is the fk-first plan, not the pre-image.)
    #[test]
    fn law_join_commutativity_declared_pkfk(parts in join_parts()) {
        let fix = fixture();
        let reference = {
            let stmt = parse(&join_stmt(true, parts)).unwrap();
            let plan = lower(&stmt, &fix.catalog).unwrap();
            canon(&execute(&plan).map_err(TestCaseError::fail)?)
        };
        for emp_first in [true, false] {
            let sql = join_stmt(emp_first, parts);
            let stmt = parse(&sql).unwrap();
            let plan = lower(&stmt, &fix.catalog).unwrap();
            let reordered = JoinOrder.apply(&plan, &fix.catalog);
            let out = execute(&reordered)
                .map_err(|e| TestCaseError::fail(format!("{sql:?} post-join-order: {e}")))?;
            prop_assert!(
                canon(&out) == reference,
                "join commutativity violated on {sql:?} (emp_first={emp_first})"
            );
        }
    }

    /// The full pipeline (what `Planner::plan` actually ships) preserves
    /// results and verifiability end to end, not just pass-by-pass.
    #[test]
    fn law_full_pipeline_preserves_results(parts in single_parts()) {
        let fix = fixture();
        let sql = single_table_stmt(parts);
        let stmt = parse(&sql).unwrap();
        let plan = lower(&stmt, &fix.catalog).unwrap();
        let mut rewritten = plan.clone();
        for pass in adp_core::passes::default_passes() {
            rewritten = pass.apply(&rewritten, &fix.catalog);
        }
        let pre = execute(&plan).map_err(TestCaseError::fail)?;
        let post = execute(&rewritten)
            .map_err(|e| TestCaseError::fail(format!("{sql:?} post-pipeline: {e}")))?;
        prop_assert!(
            canon(&pre) == canon(&post),
            "pipeline changed results of {sql:?}"
        );
    }
}

/// The law names under test are the ones the passes advertise — EXPLAIN
/// output, docs, and this suite must not drift apart.
#[test]
fn law_names_match_pass_metadata() {
    let expected = [
        ("filter-merge", "filter merge / selection commutativity"),
        ("join-order", "join commutativity (declared pk-fk)"),
        ("predicate-pushdown", "selection pushdown"),
        ("projection-pruning", "projection pushdown / idempotence"),
        (
            "distinct-elimination",
            "distinct elimination on key-bearing output",
        ),
    ];
    let passes = adp_core::passes::default_passes();
    assert_eq!(passes.len(), expected.len());
    for (pass, (name, law)) in passes.iter().zip(expected) {
        assert_eq!(pass.name(), name);
        assert_eq!(pass.law(), law);
    }
}

/// Ground-truth anchor so "pre == post" can never mean "both wrong": one
/// fully planned statement checked against hand-computed rows.
#[test]
fn anchor_known_rows_survive_the_pipeline() {
    let fix = fixture();
    let stmt = parse("SELECT * FROM emp WHERE dept BETWEEN 10 AND 20").unwrap();
    let plan = lower(&stmt, &fix.catalog).unwrap();
    let mut rewritten = plan.clone();
    for pass in adp_core::passes::default_passes() {
        rewritten = pass.apply(&rewritten, &fix.catalog);
    }
    for p in [&plan, &rewritten] {
        let out = execute(p).unwrap();
        let mut names: Vec<String> = {
            let slot = out.columns.iter().position(|c| c == "name").unwrap();
            out.rows
                .iter()
                .map(|r| format!("{:?}", r.values()[slot]))
                .collect()
        };
        names.sort();
        assert_eq!(names.len(), 4);
        assert_eq!(
            names,
            ["Text(\"A\")", "Text(\"C\")", "Text(\"D\")", "Text(\"E\")"]
        );
    }
}

// ---------------------------------------------------------------------------
// Mutation checks: the harness must catch planted planner bugs
// ---------------------------------------------------------------------------

/// Deliberately broken: silently drops the first predicate of the first
/// Filter it finds — a classic "lost conjunct" planner bug.
struct DropFirstPredicate;

impl Pass for DropFirstPredicate {
    fn name(&self) -> &'static str {
        "broken-drop-predicate"
    }
    fn law(&self) -> &'static str {
        "deliberately broken (must be caught by the suite)"
    }
    #[allow(clippy::only_used_in_recursion)] // `catalog` is fixed by the trait
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan {
        match plan {
            Plan::Filter { input, predicates } if !predicates.is_empty() => Plan::Filter {
                input: input.clone(),
                predicates: predicates[1..].to_vec(),
            },
            Plan::Filter { input, predicates } => Plan::Filter {
                input: Box::new(self.apply(input, catalog)),
                predicates: predicates.clone(),
            },
            Plan::Project { input, list } => Plan::Project {
                input: Box::new(self.apply(input, catalog)),
                list: list.clone(),
            },
            other => other.clone(),
        }
    }
}

/// Deliberately broken: resets every scan back to the full domain without
/// reintroducing the predicate it had absorbed — an unsound "undo" of
/// predicate pushdown.
struct WidenScans;

impl Pass for WidenScans {
    fn name(&self) -> &'static str {
        "broken-widen-scan"
    }
    fn law(&self) -> &'static str {
        "deliberately broken (must be caught by the suite)"
    }
    #[allow(clippy::only_used_in_recursion)] // `catalog` is fixed by the trait
    fn apply(&self, plan: &Plan, catalog: &Catalog) -> Plan {
        match plan {
            Plan::Scan { table, .. } => Plan::Scan {
                table: table.clone(),
                range: adp_relation::KeyRange::all(),
            },
            Plan::Filter { input, predicates } => Plan::Filter {
                input: Box::new(self.apply(input, catalog)),
                predicates: predicates.clone(),
            },
            Plan::Project { input, list } => Plan::Project {
                input: Box::new(self.apply(input, catalog)),
                list: list.clone(),
            },
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.apply(input, catalog)),
            },
            other => other.clone(),
        }
    }
}

#[test]
fn mutation_dropped_predicate_is_caught() {
    let verdict = check_pass(&DropFirstPredicate, "SELECT * FROM emp WHERE dept >= 20");
    let err = verdict.expect_err("a dropped predicate must fail the law check");
    assert!(err.contains("violated"), "unexpected failure mode: {err}");
}

#[test]
fn mutation_widened_scan_is_caught() {
    // Run the real pushdown first so the predicate lives in the scan
    // range, then plant the widening bug on top.
    let fix = fixture();
    let stmt = parse("SELECT DISTINCT name, dept FROM emp WHERE dept BETWEEN 20 AND 30").unwrap();
    let plan = lower(&stmt, &fix.catalog).unwrap();
    let pushed = PredicatePushdown.apply(&plan, &fix.catalog);
    let broken = WidenScans.apply(&pushed, &fix.catalog);
    let pre = canon(&execute(&pushed).unwrap());
    let post = canon(&execute(&broken).unwrap());
    assert_ne!(pre, post, "the widened scan must change observable results");
}
