//! The Section 3.2 cheating strategies, replayed **through a live
//! socket**: a tampering server mounts each `publisher::malicious` attack
//! as a response hook, and the remote verifier must reject every forgery
//! that arrives over the wire — same guarantee as the in-process
//! `attack_matrix`, now across the network boundary (which also proves the
//! forged VOs survive encode → TCP → decode and *still* get caught, rather
//! than being saved by a codec error).
//!
//! Cells mirror `adp-core/tests/attack_matrix.rs` for the three
//! select-query shapes the protocol carries (joins are not on the wire
//! yet). Applicability is asserted, not assumed: an attack the tamper
//! harness refuses on an expected-applicable shape fails the test.

use adp_core::prelude::*;
use adp_core::publisher::malicious::{tamper, Attack};
use adp_relation::{
    Column, CompareOp, KeyRange, Predicate, Record, Schema, SelectQuery, Table, Value, ValueType,
};
use adp_server::{RemoteError, RemoteVerifier, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

fn staff_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
        ],
        "salary",
    );
    let mut t = Table::new("staff", schema);
    for i in 0..20i64 {
        t.insert(Record::new(vec![
            Value::Int(i),
            Value::from(format!("emp{i}")),
            Value::Int(1_000 + i * 500),
            Value::Int(i % 3),
        ]))
        .unwrap();
    }
    t
}

fn fixture() -> &'static (Arc<SignedTable>, Certificate) {
    static FIX: OnceLock<(Arc<SignedTable>, Certificate)> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA77AC);
        let owner = Owner::new(512, &mut rng);
        let st = owner
            .sign_table(
                staff_table(),
                Domain::new(0, 100_000),
                SchemeConfig::default(),
            )
            .unwrap();
        let cert = owner.certificate(&st);
        (Arc::new(st), cert)
    })
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    RangeSelect,
    FilteredSelect,
    ProjectDistinct,
}

const SHAPES: [Shape; 3] = [
    Shape::RangeSelect,
    Shape::FilteredSelect,
    Shape::ProjectDistinct,
];

fn select_query(shape: Shape) -> SelectQuery {
    let base = SelectQuery::range(KeyRange::closed(2_000, 9_000));
    match shape {
        Shape::RangeSelect => base,
        Shape::FilteredSelect => base.filter(Predicate::new("dept", CompareOp::Eq, 1i64)),
        Shape::ProjectDistinct => base.project(&["dept"]).distinct(),
    }
}

/// Mirrors `attack_matrix::applicable` for the select shapes.
fn applicable(attack: Attack, shape: Shape) -> bool {
    match attack {
        Attack::MislabelFiltered => shape == Shape::FilteredSelect,
        Attack::FakeDuplicate => shape == Shape::ProjectDistinct,
        Attack::TruncateTail => shape != Shape::FilteredSelect,
        _ => true,
    }
}

/// Runs every shape against a server whose responses are forged with
/// `attack`. The hook counts how often the tamper harness actually forged
/// something, so "attack inapplicable" can be distinguished from "attack
/// silently skipped".
fn run_attack(attack: Attack) {
    let (st, cert) = fixture();
    let forged = Arc::new(AtomicUsize::new(0));
    let forged_in_hook = Arc::clone(&forged);
    let mut server = Server::new(ServerConfig::default());
    server.add_shared_table(0, Arc::clone(st));
    server.set_tamper(move |publisher, query, result, vo| {
        match tamper(publisher, query, &result, &vo, attack) {
            Some((bad_result, bad_vo)) => {
                assert!(
                    bad_result != result || bad_vo != vo,
                    "{attack:?} was a no-op"
                );
                forged_in_hook.fetch_add(1, Ordering::SeqCst);
                (bad_result, bad_vo)
            }
            None => (result, vo),
        }
    });
    let handle = server.serve("127.0.0.1:0").unwrap();
    let mut user = RemoteVerifier::connect(handle.addr(), cert.clone(), 0).unwrap();

    for shape in SHAPES {
        let query = select_query(shape);
        let forged_before = forged.load(Ordering::SeqCst);
        let verdict = user.select(&query);
        let was_forged = forged.load(Ordering::SeqCst) > forged_before;
        assert_eq!(
            was_forged,
            applicable(attack, shape),
            "{attack:?} applicability drifted on {shape:?}"
        );
        if was_forged {
            match verdict {
                Err(RemoteError::Verify(_)) => {}
                other => panic!(
                    "{attack:?} on {shape:?} must be rejected by remote \
                     verification, got {other:?}"
                ),
            }
        } else {
            // Inapplicable: the server answered honestly and honesty must
            // verify — the hook may not break the honest path.
            let r = verdict.unwrap_or_else(|e| {
                panic!("honest {shape:?} answer through tampering server must verify: {e}")
            });
            assert!(!r.rows.is_empty());
        }
    }

    handle.shutdown();
}

macro_rules! remote_attacks {
    ($($name:ident => $attack:ident;)+) => {$(
        #[test]
        fn $name() {
            run_attack(Attack::$attack);
        }
    )+};
}

remote_attacks! {
    remote_omit_interior       => OmitInterior;
    remote_truncate_tail       => TruncateTail;
    remote_fake_empty          => FakeEmpty;
    remote_inject_spurious     => InjectSpurious;
    remote_tamper_value        => TamperValue;
    remote_swap_values         => SwapValues;
    remote_shift_left_boundary => ShiftLeftBoundary;
    remote_mislabel_filtered   => MislabelFiltered;
    remote_fake_duplicate      => FakeDuplicate;
}
