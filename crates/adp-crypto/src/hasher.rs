//! The one-way hash abstraction `h(.)` used throughout the scheme, with
//! domain separation and a global operation counter.
//!
//! # Domain separation
//!
//! The paper (Section 3.1) requires that the iterated hash `h^i(r)` has no
//! inverse for `i < 0`; it suggests choosing `h` whose output length differs
//! from the length of `r`, so that `h^{-1}(r) != r` trivially. We achieve the
//! same guarantee more robustly by *domain-separating* every use of the hash
//! function with a one-byte context tag:
//!
//! * `VALUE` — first application of the chain to an encoded value,
//! * `STEP` — each subsequent chain step over a digest,
//! * `LEAF` / `NODE` — Merkle tree leaves and internal nodes,
//! * `LINK` — the signature-chain digest `h(g(r_{i-1}) | g(r_i) | g(r_{i+1}))`,
//! * `SIG` — the full-domain-hash padding for RSA signing.
//!
//! Separation makes cross-context collisions (e.g. passing a Merkle node off
//! as a chain step) structurally impossible rather than merely unlikely.
//!
//! # Operation counting
//!
//! The paper's cost model is expressed in *numbers of hash operations*
//! (`C_hash` per op). A relaxed global counter lets benches report exact
//! operation counts that can be compared with formulas (4)/(5) independently
//! of hardware speed.

use crate::digest::{Digest, MAX_DIGEST_LEN, MIN_DIGEST_LEN};
use crate::sha256::Sha256;
use std::sync::atomic::{AtomicU64, Ordering};

/// Context tags for domain separation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HashDomain {
    /// First hash application over an encoded plaintext value.
    Value = 0x56,
    /// A chain step: hash of a previous digest.
    Step = 0x43,
    /// Merkle tree leaf.
    Leaf = 0x4c,
    /// Merkle tree internal node.
    Node = 0x4e,
    /// Signature-chain link digest (formula 1 inner hash).
    Link = 0x4b,
    /// Full-domain-hash expansion for RSA signing.
    Sig = 0x53,
    /// Free-form application data.
    Data = 0x44,
    /// A digit-representation digest `h(δ)` (Section 5.1 of the paper):
    /// hash over the per-digit chain digests of one representation.
    Rep = 0x52,
    /// A direction component `h(h(δ_t) | MHT-root)` combining the canonical
    /// representation digest with the non-canonical-representation tree.
    Comp = 0x4f,
}

static HASH_OPS: AtomicU64 = AtomicU64::new(0);

/// Total number of hash-function applications performed process-wide since
/// start (or since [`reset_hash_ops`]).
pub fn hash_ops() -> u64 {
    HASH_OPS.load(Ordering::Relaxed)
}

/// Resets the global hash-operation counter and returns the previous value.
pub fn reset_hash_ops() -> u64 {
    HASH_OPS.swap(0, Ordering::Relaxed)
}

/// A configured one-way hash function: SHA-256 truncated to `digest_len`
/// bytes (16..=32), with domain separation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hasher {
    digest_len: usize,
}

impl Default for Hasher {
    /// Default matches the paper's `M_digest` = 128 bits.
    fn default() -> Self {
        Hasher::new(16)
    }
}

impl Hasher {
    /// Creates a hasher producing `digest_len`-byte digests.
    ///
    /// # Panics
    /// If `digest_len` is outside `16..=32`.
    pub fn new(digest_len: usize) -> Self {
        assert!(
            (MIN_DIGEST_LEN..=MAX_DIGEST_LEN).contains(&digest_len),
            "digest length {digest_len} out of range 16..=32"
        );
        Hasher { digest_len }
    }

    /// Digest length in bytes.
    #[inline]
    pub fn digest_len(&self) -> usize {
        self.digest_len
    }

    /// Digest length in bits (the paper's `M_digest`).
    #[inline]
    pub fn digest_bits(&self) -> usize {
        self.digest_len * 8
    }

    /// One hash application without touching the op counter (shared core of
    /// [`Self::hash_parts`] and the bulk APIs, which count in batches).
    #[inline]
    fn hash_parts_uncounted(&self, domain: HashDomain, parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        h.update(&[domain as u8]);
        for p in parts {
            // Length-prefix each part so that concatenation is injective:
            // h(a|b) with a="x", b="yz" must differ from a="xy", b="z".
            h.update(&(p.len() as u32).to_le_bytes());
            h.update(p);
        }
        let full = h.finalize();
        Digest::from_bytes(&full[..self.digest_len])
    }

    /// One application of `h` over `parts` under `domain`.
    pub fn hash_parts(&self, domain: HashDomain, parts: &[&[u8]]) -> Digest {
        HASH_OPS.fetch_add(1, Ordering::Relaxed);
        self.hash_parts_uncounted(domain, parts)
    }

    /// Bulk link hashing: one digest per consecutive window of three parts
    /// (`parts[i-1] | parts[i] | parts[i+1]` for every interior `i`), each
    /// byte-identical to `hash_parts(domain, &[prev, cur, next])`.
    ///
    /// This is the owner-side signature-chain shape (formula (1)): callers
    /// encode each record digest **once** and hash a whole run of tuples,
    /// instead of re-buffering every neighbour triple.
    pub fn hash_triple_windows(&self, domain: HashDomain, parts: &[&[u8]]) -> Vec<Digest> {
        assert!(parts.len() >= 3, "need at least one window of three parts");
        HASH_OPS.fetch_add((parts.len() - 2) as u64, Ordering::Relaxed);
        parts
            .windows(3)
            .map(|w| self.hash_parts_uncounted(domain, w))
            .collect()
    }

    /// One application of `h` over a single byte string.
    #[inline]
    pub fn hash(&self, domain: HashDomain, data: &[u8]) -> Digest {
        self.hash_parts(domain, &[data])
    }

    /// One application of `h` over a sequence of digests (concatenation).
    pub fn hash_digests(&self, domain: HashDomain, digests: &[Digest]) -> Digest {
        HASH_OPS.fetch_add(1, Ordering::Relaxed);
        let mut h = Sha256::new();
        h.update(&[domain as u8]);
        for d in digests {
            h.update(&(d.len() as u32).to_le_bytes());
            h.update(d.as_bytes());
        }
        let full = h.finalize();
        Digest::from_bytes(&full[..self.digest_len])
    }

    /// Expands a digest into `out_len` pseudo-random bytes (counter-mode
    /// full-domain hash, used for RSA-FDH signature padding).
    pub fn expand(&self, seed: &[u8], out_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(out_len);
        let mut counter = 0u32;
        while out.len() < out_len {
            HASH_OPS.fetch_add(1, Ordering::Relaxed);
            let mut h = Sha256::new();
            h.update(&[HashDomain::Sig as u8]);
            h.update(&counter.to_le_bytes());
            h.update(seed);
            let block = h.finalize();
            let take = (out_len - out.len()).min(block.len());
            out.extend_from_slice(&block[..take]);
            counter += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_lengths_respected() {
        for len in [16, 20, 32] {
            let h = Hasher::new(len);
            assert_eq!(h.hash(HashDomain::Data, b"hello").len(), len);
        }
    }

    #[test]
    fn domains_separate() {
        let h = Hasher::default();
        assert_ne!(
            h.hash(HashDomain::Value, b"x"),
            h.hash(HashDomain::Step, b"x")
        );
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        let h = Hasher::default();
        assert_ne!(
            h.hash_parts(HashDomain::Data, &[b"ab", b"c"]),
            h.hash_parts(HashDomain::Data, &[b"a", b"bc"])
        );
    }

    #[test]
    fn deterministic() {
        let h = Hasher::new(32);
        assert_eq!(
            h.hash(HashDomain::Data, b"z"),
            h.hash(HashDomain::Data, b"z")
        );
    }

    #[test]
    fn op_counter_counts() {
        let h = Hasher::default();
        let before = hash_ops();
        let _ = h.hash(HashDomain::Data, b"1");
        let _ = h.hash_digests(HashDomain::Node, &[h.hash(HashDomain::Leaf, b"2")]);
        assert!(hash_ops() >= before + 3);
    }

    #[test]
    fn triple_windows_match_singles() {
        let h = Hasher::default();
        let parts: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 3 + i as usize]).collect();
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let bulk = h.hash_triple_windows(HashDomain::Link, &refs);
        assert_eq!(bulk.len(), 4);
        for (i, d) in bulk.iter().enumerate() {
            assert_eq!(
                *d,
                h.hash_parts(HashDomain::Link, &[refs[i], refs[i + 1], refs[i + 2]]),
                "window {i}"
            );
        }
    }

    #[test]
    fn expand_lengths() {
        let h = Hasher::default();
        assert_eq!(h.expand(b"seed", 10).len(), 10);
        assert_eq!(h.expand(b"seed", 100).len(), 100);
        // Deterministic and prefix-consistent.
        assert_eq!(h.expand(b"seed", 100)[..10], h.expand(b"seed", 10)[..]);
    }
}
