//! The append-only update log: length-prefixed, CRC-framed batch records.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "ADPL" (0x41 0x44 0x50 0x4C)
//! 4       2     format version, u16 LE (currently 1)
//! 6       4     CRC-32 of bytes 0..6
//! ```
//!
//! followed by zero or more records, each framed as
//!
//! ```text
//! u32 LE  payload length
//! ...     payload
//! u32 LE  CRC-32(length ‖ payload)
//! ```
//!
//! A record payload (encoded with the `adp_core::wire` primitives) is:
//!
//! ```text
//! u64   seq              must be contiguous from the snapshot's base_seq
//! u32   op_count         (≤ 2^20)
//!   per op:
//!     u8  tag: 0 = insert · 1 = delete · 2 = update
//!     insert:  u32 arity (≤ 2^16), then arity length-prefixed values
//!     delete:  i64 key, u32 replica
//!     update:  i64 key, u32 replica, u32 arity, then the values
//! u32   resigned_count   (≤ 2^20)
//!   per entry:
//!     u32    chain position (post-batch)
//!     bytes  signature
//! ```
//!
//! Decoding is strict: a torn tail, a flipped bit, or trailing garbage is
//! a typed [`StoreError`]. Integrity of the *content* is separately
//! enforced at replay time: [`SignedTable::replay_batch`] verifies every
//! replayed signature against the recomputed link digest, so even a
//! record forged with a valid CRC cannot smuggle unauthenticated data
//! into the table.
//!
//! [`SignedTable::replay_batch`]: adp_core::prelude::SignedTable::replay_batch

use crate::crc32::crc32_multi;
use crate::StoreError;
use adp_core::prelude::Mutation;
use adp_core::wire::{Reader, Writer};
use adp_crypto::Signature;
use adp_relation::Record;

/// Log file magic.
pub const LOG_MAGIC: [u8; 4] = *b"ADPL";

/// Log format version written (and the only one read) by this build.
pub const LOG_VERSION: u16 = 1;

/// Fixed log header length (magic + version + header CRC).
pub const LOG_HEADER_LEN: usize = 10;

/// Hard cap on a single record payload, checked before allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 28; // 256 MiB

const MAX_OPS: usize = 1 << 20;
const MAX_ARITY: usize = 1 << 16;

/// One logged batch: the canonical mutations of an `Owner::apply_batch`
/// call plus the re-signed chain positions, exactly as
/// [`adp_core::owner::BatchReport`] reports them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Sequence number; contiguous from the snapshot's `base_seq`.
    pub seq: u64,
    /// Mutations in canonical application order.
    pub ops: Vec<Mutation>,
    /// `(chain position, signature)` for every re-signed position.
    pub resigned: Vec<(u32, Signature)>,
}

/// The 10-byte log file header.
pub fn log_header() -> [u8; LOG_HEADER_LEN] {
    let mut h = [0u8; LOG_HEADER_LEN];
    h[0..4].copy_from_slice(&LOG_MAGIC);
    h[4..6].copy_from_slice(&LOG_VERSION.to_le_bytes());
    let crc = crc32_multi(&[&h[0..6]]);
    h[6..10].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validates a log file's header, returning the body (the bytes after it).
pub fn check_log_header(bytes: &[u8]) -> Result<&[u8], StoreError> {
    const HDR: &str = "log header";
    if bytes.len() < LOG_HEADER_LEN {
        return Err(StoreError::Truncated { context: HDR });
    }
    if bytes[0..4] != LOG_MAGIC {
        return Err(StoreError::BadMagic { context: HDR });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != LOG_VERSION {
        return Err(StoreError::BadVersion {
            context: HDR,
            got: version,
        });
    }
    let stored = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
    if crc32_multi(&[&bytes[0..6]]) != stored {
        return Err(StoreError::CrcMismatch { context: HDR });
    }
    Ok(&bytes[LOG_HEADER_LEN..])
}

fn write_record_values(w: &mut Writer, record: &Record) {
    w.u32(record.arity() as u32);
    for v in record.values() {
        w.value(v);
    }
}

fn read_record_values(r: &mut Reader) -> Result<Record, StoreError> {
    let arity = r.u32()? as usize;
    if arity > MAX_ARITY {
        return Err(StoreError::BadSection {
            context: "log record arity too large",
        });
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(r.value()?);
    }
    Ok(Record::new(values))
}

fn encode_payload(rec: &LogRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(rec.seq);
    w.u32(rec.ops.len() as u32);
    for op in &rec.ops {
        match op {
            Mutation::Insert(record) => {
                w.u8(0);
                write_record_values(&mut w, record);
            }
            Mutation::Delete { key, replica } => {
                w.u8(1);
                w.i64(*key);
                w.u32(*replica);
            }
            Mutation::Update {
                key,
                replica,
                record,
            } => {
                w.u8(2);
                w.i64(*key);
                w.u32(*replica);
                write_record_values(&mut w, record);
            }
        }
    }
    w.u32(rec.resigned.len() as u32);
    for (pos, sig) in &rec.resigned {
        w.u32(*pos);
        w.bytes(&sig.to_bytes());
    }
    w.into_bytes()
}

fn decode_payload(payload: &[u8]) -> Result<LogRecord, StoreError> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let n_ops = r.u32()? as usize;
    if n_ops > MAX_OPS {
        return Err(StoreError::BadSection {
            context: "log record has too many ops",
        });
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(match r.u8()? {
            0 => Mutation::Insert(read_record_values(&mut r)?),
            1 => Mutation::Delete {
                key: r.i64()?,
                replica: r.u32()?,
            },
            2 => Mutation::Update {
                key: r.i64()?,
                replica: r.u32()?,
                record: read_record_values(&mut r)?,
            },
            _ => {
                return Err(StoreError::BadSection {
                    context: "unknown mutation tag",
                })
            }
        });
    }
    let n_sigs = r.u32()? as usize;
    if n_sigs > MAX_OPS {
        return Err(StoreError::BadSection {
            context: "log record has too many signatures",
        });
    }
    let mut resigned = Vec::with_capacity(n_sigs);
    for _ in 0..n_sigs {
        let pos = r.u32()?;
        resigned.push((pos, Signature::from_bytes(r.bytes()?)));
    }
    if !r.done() {
        return Err(StoreError::TrailingBytes {
            context: "log record payload",
        });
    }
    Ok(LogRecord { seq, ops, resigned })
}

/// Encodes one framed record: `u32 length ‖ payload ‖ u32 CRC`.
pub fn encode_record(rec: &LogRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let len = (payload.len() as u32).to_le_bytes();
    let crc = crc32_multi(&[&len, &payload]);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&len);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes every record in a log body (the bytes after the header).
/// Strict: a torn or corrupt tail is an error, not an ignorable remainder
/// — recovery is an explicit operator decision (see `docs/STORAGE.md`).
pub fn decode_records(mut body: &[u8]) -> Result<Vec<LogRecord>, StoreError> {
    const REC: &str = "log record frame";
    let mut out = Vec::new();
    while !body.is_empty() {
        if body.len() < 4 {
            return Err(StoreError::Truncated { context: REC });
        }
        let len = u32::from_le_bytes(body[0..4].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Err(StoreError::BadSection {
                context: "log record length exceeds cap",
            });
        }
        let len = len as usize;
        if body.len() < 4 + len + 4 {
            return Err(StoreError::Truncated { context: REC });
        }
        let payload = &body[4..4 + len];
        let stored = u32::from_le_bytes(body[4 + len..4 + len + 4].try_into().unwrap());
        if crc32_multi(&[&body[0..4], payload]) != stored {
            return Err(StoreError::CrcMismatch { context: REC });
        }
        out.push(decode_payload(payload)?);
        body = &body[4 + len + 4..];
    }
    Ok(out)
}

/// Like [`decode_records`], but treats an **incomplete final frame** as a
/// torn append — the state a crash (or `kill -9`) mid-`append_record`
/// leaves behind — rather than an error. Returns the records before the
/// tear plus `Some(offset)` of where the torn tail starts in `body`, so
/// the caller can truncate it away before appending again.
///
/// Only *incompleteness* is forgiven: the append discipline writes a
/// record's bytes sequentially, so a crash leaves a strict byte prefix.
/// A *complete* frame that fails its CRC or payload decode cannot be
/// produced by a torn append and is still a typed error — corruption and
/// tampering stay loud. An absurd length prefix (beyond
/// [`MAX_RECORD_LEN`]) is unparseable-past and can only arise from a torn
/// prefix under that discipline, so it is treated as the tear.
pub fn decode_records_recovering(
    body: &[u8],
) -> Result<(Vec<LogRecord>, Option<usize>), StoreError> {
    const REC: &str = "log record frame";
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < body.len() {
        let rest = &body[off..];
        if rest.len() < 4 {
            return Ok((out, Some(off)));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Ok((out, Some(off)));
        }
        let len = len as usize;
        if rest.len() < 4 + len + 4 {
            return Ok((out, Some(off)));
        }
        let payload = &rest[4..4 + len];
        let stored = u32::from_le_bytes(rest[4 + len..4 + len + 4].try_into().unwrap());
        if crc32_multi(&[&rest[0..4], payload]) != stored {
            return Err(StoreError::CrcMismatch { context: REC });
        }
        out.push(decode_payload(payload)?);
        off += 4 + len + 4;
    }
    Ok((out, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::Value;

    fn sample_record(seq: u64) -> LogRecord {
        LogRecord {
            seq,
            ops: vec![
                Mutation::Delete {
                    key: -3,
                    replica: 1,
                },
                Mutation::Update {
                    key: 9,
                    replica: 0,
                    record: Record::new(vec![Value::Int(9), Value::from("x")]),
                },
                Mutation::Insert(Record::new(vec![Value::Int(7), Value::Bool(true)])),
            ],
            resigned: vec![
                (2, Signature::from_bytes(&[0xAB; 64])),
                (3, Signature::from_bytes(&[0xCD; 64])),
            ],
        }
    }

    #[test]
    fn records_roundtrip() {
        let recs = vec![sample_record(0), sample_record(1)];
        let mut body = Vec::new();
        for r in &recs {
            body.extend_from_slice(&encode_record(r));
        }
        assert_eq!(decode_records(&body).unwrap(), recs);
        assert!(decode_records(&[]).unwrap().is_empty());
    }

    #[test]
    fn header_roundtrip_and_rejections() {
        let h = log_header();
        assert!(check_log_header(&h).unwrap().is_empty());

        let mut bad = h;
        bad[0] = b'Z';
        assert!(matches!(
            check_log_header(&bad),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad = h;
        bad[4] = 9;
        assert!(matches!(
            check_log_header(&bad),
            Err(StoreError::BadVersion { got: 9, .. })
        ));

        let mut bad = h;
        bad[7] ^= 0x10;
        assert!(matches!(
            check_log_header(&bad),
            Err(StoreError::CrcMismatch { .. })
        ));

        assert!(matches!(
            check_log_header(&h[..5]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let body = encode_record(&sample_record(5));

        // Every truncation errors.
        for cut in 0..body.len() {
            if cut == 0 {
                continue; // empty body is a valid (empty) log
            }
            assert!(decode_records(&body[..cut]).is_err(), "cut at {cut}");
        }

        // Every single-byte flip errors (everything is CRC-covered).
        for i in 0..body.len() {
            let mut bad = body.clone();
            bad[i] ^= 0x01;
            assert!(decode_records(&bad).is_err(), "flip at {i}");
        }

        // Trailing garbage after a valid record errors.
        let mut bad = body.clone();
        bad.push(0xEE);
        assert!(decode_records(&bad).is_err());
    }

    #[test]
    fn recovering_decode_drops_exactly_the_torn_tail() {
        let full = encode_record(&sample_record(0));
        let mut body = full.clone();
        body.extend_from_slice(&encode_record(&sample_record(1)));

        // No tear: identical to the strict decoder.
        let (recs, torn) = decode_records_recovering(&body).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(torn, None);

        // Every possible crash prefix of the second record recovers the
        // first and reports the tear at the boundary.
        for cut in 1..body.len() - full.len() {
            let torn_body = &body[..full.len() + cut];
            let (recs, torn) = decode_records_recovering(torn_body).unwrap();
            assert_eq!(recs.len(), 1, "cut at +{cut}");
            assert_eq!(recs[0], sample_record(0));
            assert_eq!(torn, Some(full.len()), "cut at +{cut}");
        }
    }

    #[test]
    fn recovering_decode_still_rejects_corruption() {
        let body = encode_record(&sample_record(3));
        // A complete frame with a flipped payload byte is corruption,
        // not a tear.
        let mut bad = body.clone();
        bad[6] ^= 0x01;
        assert!(decode_records_recovering(&bad).is_err());
        // A flipped CRC likewise.
        let mut bad = body.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_records_recovering(&bad).is_err());
    }

    #[test]
    fn recovering_decode_treats_absurd_length_as_tear() {
        let mut body = encode_record(&sample_record(0));
        let at = body.len();
        body.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        body.extend_from_slice(&[0u8; 32]);
        let (recs, torn) = decode_records_recovering(&body).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(torn, Some(at));
    }
}
