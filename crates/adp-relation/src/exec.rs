//! Plain (unauthenticated) query execution over tables.
//!
//! The publisher in `adp-core` layers verification-object construction on
//! top of these primitives; baselines use them directly. Executing a select
//! returns row *positions* alongside records because the authentication
//! layer needs positional context (neighbours, boundaries).

use crate::query::{JoinQuery, Predicate, SelectQuery};
use crate::record::Record;
use crate::table::{Row, Table};

/// One row of a select result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectedRow {
    /// Position of the row in the table's sort order.
    pub position: usize,
    /// Replica number.
    pub replica: u32,
    /// The (unprojected) record.
    pub record: Record,
}

/// The outcome of evaluating a select over a table: the matching rows plus,
/// for multipoint queries, the positions inside the key range whose rows
/// failed the non-key filters (the scheme must account for these,
/// Section 4.4).
#[derive(Clone, Debug, Default)]
pub struct SelectOutcome {
    pub matches: Vec<SelectedRow>,
    pub filtered_positions: Vec<usize>,
}

/// Evaluates all of `filters` against a record.
pub fn passes_filters(table: &Table, record: &Record, filters: &[Predicate]) -> bool {
    filters
        .iter()
        .all(|p| p.eval(table.schema(), record.values()))
}

/// Executes the selection part of `query` (range on key + non-key filters).
/// Projection and DISTINCT are applied by the caller, which may need the
/// unprojected rows for authentication.
pub fn execute_select(table: &Table, query: &SelectQuery) -> SelectOutcome {
    let mut out = SelectOutcome::default();
    for (pos, row) in table.scan_range(query.range.lo, query.range.hi) {
        if passes_filters(table, &row.record, &query.filters) {
            out.matches.push(SelectedRow {
                position: pos,
                replica: row.replica,
                record: row.record.clone(),
            });
        } else {
            out.filtered_positions.push(pos);
        }
    }
    out
}

/// Applies a projection to a record, given resolved column indices.
pub fn apply_projection(record: &Record, indices: &[usize]) -> Record {
    record.project(indices)
}

/// Deduplicates projected rows, preserving first occurrences.
/// Returns `(kept, eliminated)` as index lists into the input.
pub fn distinct_partition(projected: &[Record]) -> (Vec<usize>, Vec<usize>) {
    let mut seen: std::collections::HashSet<&Record> = std::collections::HashSet::new();
    let mut kept = Vec::new();
    let mut eliminated = Vec::new();
    for (i, r) in projected.iter().enumerate() {
        if seen.insert(r) {
            kept.push(i);
        } else {
            eliminated.push(i);
        }
    }
    (kept, eliminated)
}

/// One row of a join result: positions into both tables plus both records.
#[derive(Clone, Debug)]
pub struct JoinedRow {
    pub r_position: usize,
    pub s_position: usize,
    pub r_record: Record,
    pub s_record: Record,
}

/// Executes a pk-fk equi-join: for every R row in `fk_range`, finds the S
/// row whose primary key equals R's foreign key.
///
/// Referential integrity is asserted: the paper's Section 4.3 relies on
/// every `R.fk` instance having a matching `S.pk` so the join cannot drop
/// R rows.
pub fn execute_pkfk_join(r: &Table, s: &Table, query: &JoinQuery) -> Vec<JoinedRow> {
    assert_eq!(
        r.schema().key_name(),
        query.fk_column,
        "R must be sorted on the foreign-key column for authenticated joins"
    );
    assert_eq!(
        s.schema().key_name(),
        query.pk_column,
        "S must be sorted on the primary-key column"
    );
    let mut out = Vec::new();
    for (r_pos, r_row) in r.scan_range(query.fk_range.lo, query.fk_range.hi) {
        let fk = r_row.record.key(r.schema());
        let s_pos = s
            .position_of(fk, 0)
            .unwrap_or_else(|| panic!("referential integrity violated: fk {fk} has no pk match"));
        out.push(JoinedRow {
            r_position: r_pos,
            s_position: s_pos,
            r_record: r_row.record.clone(),
            s_record: s.row(s_pos).record.clone(),
        });
    }
    out
}

/// Checks referential integrity of `r.fk ⊆ s.pk` (every fk value has a
/// pk match and pk values are unique).
pub fn check_referential_integrity(r: &Table, s: &Table) -> Result<(), String> {
    // pk uniqueness: replica numbers beyond 0 mean duplicates.
    for row in s.rows() {
        if row.replica != 0 {
            return Err(format!(
                "primary key {} duplicated in {}",
                row.record.key(s.schema()),
                s.name()
            ));
        }
    }
    for row in r.rows() {
        let fk = row.record.key(r.schema());
        if s.position_of(fk, 0).is_none() {
            return Err(format!(
                "foreign key {fk} in {} has no match in {}",
                r.name(),
                s.name()
            ));
        }
    }
    Ok(())
}

/// Finds contiguous runs of positions (used to describe multipoint results
/// as unions of ranges).
pub fn contiguous_runs(positions: &[usize]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut it = positions.iter().copied();
    let Some(first) = it.next() else {
        return runs;
    };
    let (mut lo, mut hi) = (first, first);
    for p in it {
        if p == hi + 1 {
            hi = p;
        } else {
            runs.push((lo, hi));
            lo = p;
            hi = p;
        }
    }
    runs.push((lo, hi));
    runs
}

/// Convenience: full rows of a table as `SelectedRow`s (for baselines).
pub fn all_rows(table: &Table) -> Vec<SelectedRow> {
    table
        .rows()
        .iter()
        .enumerate()
        .map(|(position, Row { replica, record })| SelectedRow {
            position,
            replica: *replica,
            record: record.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CompareOp, KeyRange};
    use crate::schema::{Column, Schema};
    use crate::value::{Value, ValueType};

    /// The paper's Figure 1 Employee table.
    fn emp_table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Text),
                Column::new("salary", ValueType::Int),
                Column::new("dept", ValueType::Int),
            ],
            "salary",
        );
        let mut t = Table::new("emp", schema);
        for (id, name, sal, dept) in [
            (5i64, "A", 2000i64, 1i64),
            (2, "C", 3500, 2),
            (1, "D", 8010, 1),
            (4, "B", 12100, 3),
            (3, "E", 25000, 2),
        ] {
            t.insert(Record::new(vec![
                Value::Int(id),
                Value::from(name),
                Value::Int(sal),
                Value::Int(dept),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn figure1_query() {
        // SELECT * FROM Emp WHERE Salary < 10000
        let t = emp_table();
        let q = SelectQuery::range(KeyRange::less_than(10_000));
        let out = execute_select(&t, &q);
        let ids: Vec<i64> = out
            .matches
            .iter()
            .map(|m| m.record.get(0).as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![5, 2, 1]);
        assert!(out.filtered_positions.is_empty());
    }

    #[test]
    fn figure1_multipoint_query() {
        // SELECT * FROM Emp WHERE Salary < 10000 AND Dept = 1 (Section 4.4)
        let t = emp_table();
        let q = SelectQuery::range(KeyRange::less_than(10_000)).filter(Predicate::new(
            "dept",
            CompareOp::Eq,
            1i64,
        ));
        let out = execute_select(&t, &q);
        let ids: Vec<i64> = out
            .matches
            .iter()
            .map(|m| m.record.get(0).as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![5, 1]);
        // [002, C, 3500, 2] at position 1 is inside the range but filtered.
        assert_eq!(out.filtered_positions, vec![1]);
    }

    #[test]
    fn empty_range() {
        let t = emp_table();
        let q = SelectQuery::range(KeyRange::closed(4000, 8000));
        let out = execute_select(&t, &q);
        assert!(out.matches.is_empty());
        assert!(out.filtered_positions.is_empty());
    }

    #[test]
    fn distinct_partitioning() {
        let rows: Vec<Record> = [1i64, 2, 1, 3, 2]
            .iter()
            .map(|v| Record::new(vec![Value::Int(*v)]))
            .collect();
        let (kept, eliminated) = distinct_partition(&rows);
        assert_eq!(kept, vec![0, 1, 3]);
        assert_eq!(eliminated, vec![2, 4]);
    }

    #[test]
    fn contiguous_run_detection() {
        assert_eq!(contiguous_runs(&[]), vec![]);
        assert_eq!(contiguous_runs(&[3]), vec![(3, 3)]);
        assert_eq!(
            contiguous_runs(&[1, 2, 3, 7, 8, 10]),
            vec![(1, 3), (7, 8), (10, 10)]
        );
    }

    fn dept_table() -> Table {
        let schema = Schema::new(
            vec![
                Column::new("dept", ValueType::Int),
                Column::new("dname", ValueType::Text),
            ],
            "dept",
        );
        let mut t = Table::new("dept", schema);
        for (d, n) in [(1i64, "eng"), (2, "sales"), (3, "hr")] {
            t.insert(Record::new(vec![Value::Int(d), Value::from(n)]))
                .unwrap();
        }
        t
    }

    #[test]
    fn pkfk_join() {
        // Join employees (sorted on dept for this test) to departments.
        let schema = Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("dept", ValueType::Int),
            ],
            "dept",
        );
        let mut r = Table::new("emp_by_dept", schema);
        for (id, d) in [(5i64, 1i64), (1, 1), (2, 2), (3, 2), (4, 3)] {
            r.insert(Record::new(vec![Value::Int(id), Value::Int(d)]))
                .unwrap();
        }
        let s = dept_table();
        check_referential_integrity(&r, &s).unwrap();
        let q = JoinQuery {
            fk_column: "dept".into(),
            pk_column: "dept".into(),
            fk_range: KeyRange::closed(1, 2),
            r_projection: crate::query::Projection::All,
            s_projection: crate::query::Projection::All,
        };
        let joined = execute_pkfk_join(&r, &s, &q);
        assert_eq!(joined.len(), 4);
        for j in &joined {
            assert_eq!(
                j.r_record.key(r.schema()),
                j.s_record.key(s.schema()),
                "join keys must match"
            );
        }
    }

    #[test]
    fn referential_integrity_detects_orphan() {
        let schema = Schema::new(vec![Column::new("dept", ValueType::Int)], "dept");
        let mut r = Table::new("r", schema.clone());
        r.insert(Record::new(vec![Value::Int(99)])).unwrap();
        let s = dept_table();
        assert!(check_referential_integrity(&r, &s).is_err());
    }

    #[test]
    fn referential_integrity_detects_duplicate_pk() {
        let r = dept_table();
        let schema = Schema::new(vec![Column::new("dept", ValueType::Int)], "dept");
        let mut s = Table::new("s", schema);
        s.insert(Record::new(vec![Value::Int(1)])).unwrap();
        s.insert(Record::new(vec![Value::Int(1)])).unwrap();
        assert!(check_referential_integrity(&r, &s).is_err());
    }
}
