//! # adp-bench
//!
//! Workload generation and shared harness utilities for regenerating every
//! table and figure of the paper's evaluation (Section 6). The actual
//! experiment drivers live in `benches/` (run with `cargo bench`):
//!
//! | Bench target | Paper artifact |
//! |--------------|----------------|
//! | `table1_params` | Table 1 (cost parameters, paper vs measured) |
//! | `fig9_traffic` | Figure 9 (user traffic overhead) |
//! | `fig10_user_cost` | Figure 10 (user computation overhead vs `B`) |
//! | `sec62_scaling` | Section 6.2 absolute numbers (15.5 ms / 689 ms / 6.81 s) |
//! | `sec63_updates` | Section 6.3 update locality vs Merkle trees |
//! | `ablation_chain` | Section 5.1 motivation: conceptual vs optimized chains |
//! | `baseline_compare` | Section 2.3 / 6.1 comparison vs \[10\], \[13\], \[20\] |
//! | `crypto_micro`, `vo_micro` | Criterion micro-benchmarks |

use adp_core::prelude::*;
use adp_relation::{Column, Record, Schema, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

pub mod chaos;
pub mod compare;
pub mod load;

/// Key distributions for generated tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDist {
    /// Evenly spaced keys (`gap` apart) — deterministic selectivity.
    Spaced { gap: i64 },
    /// Uniform random keys in the legal key interval.
    Uniform,
    /// Clustered keys: a few dense runs (stress for duplicates/ranges).
    Clustered,
    /// Zipf-distributed keys (exponent ~1): heavy duplication on a few hot
    /// keys, exercising the replica-number machinery at scale.
    Zipf,
}

/// Workload builder: tables with a key column and a sized payload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    pub rows: usize,
    /// Payload bytes per record (drives the paper's `M_r`).
    pub payload_bytes: usize,
    pub dist: KeyDist,
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with sensible defaults.
    pub fn new(rows: usize) -> Self {
        WorkloadSpec {
            rows,
            payload_bytes: 64,
            dist: KeyDist::Spaced { gap: 10 },
            seed: 42,
        }
    }

    /// Builder: payload size.
    pub fn payload(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Builder: key distribution.
    pub fn dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// The schema used by generated tables: `k INT, grp INT, payload BYTES`.
    pub fn schema() -> Schema {
        Schema::new(
            vec![
                Column::new("k", ValueType::Int),
                Column::new("grp", ValueType::Int),
                Column::new("payload", ValueType::Bytes),
            ],
            "k",
        )
    }

    /// Generates the table and a domain that fits it.
    pub fn build(&self) -> (Table, Domain) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let domain = match self.dist {
            KeyDist::Spaced { gap } => Domain::new(0, (self.rows as i64 + 2) * gap.max(1) + 4),
            KeyDist::Uniform | KeyDist::Clustered | KeyDist::Zipf => Domain::new(0, 1 << 24),
        };
        let mut t = Table::new("bench", Self::schema());
        for i in 0..self.rows {
            let k = match self.dist {
                KeyDist::Spaced { gap } => domain.key_min() + (i as i64) * gap,
                KeyDist::Uniform => rng.gen_range(domain.key_min()..=domain.key_max()),
                KeyDist::Clustered => {
                    let cluster = (i / 50) as i64;
                    domain.key_min() + cluster * 1_000 + rng.gen_range(0..40)
                }
                KeyDist::Zipf => {
                    // Inverse-CDF sampling of a rank-Zipf over 1000 ranks:
                    // rank r with weight 1/r.
                    let ranks = 1_000u32;
                    let h: f64 = (1..=ranks).map(|r| 1.0 / r as f64).sum();
                    let mut target = rng.gen_range(0.0..h);
                    let mut rank = 1u32;
                    for r in 1..=ranks {
                        target -= 1.0 / r as f64;
                        if target <= 0.0 {
                            rank = r;
                            break;
                        }
                    }
                    domain.key_min() + (rank as i64) * 7
                }
            };
            let mut payload = vec![0u8; self.payload_bytes];
            rng.fill(payload.as_mut_slice());
            t.insert(Record::new(vec![
                Value::Int(k),
                Value::Int((i % 10) as i64),
                Value::Bytes(payload),
            ]))
            .expect("generated record is schema-valid");
        }
        (t, domain)
    }

    /// Generates, signs, and certifies in one go.
    pub fn signed(&self, owner: &Owner, config: SchemeConfig) -> (SignedTable, Certificate) {
        let (table, domain) = self.build();
        let st = owner
            .sign_table(table, domain, config)
            .expect("generated keys are in-domain");
        let cert = owner.certificate(&st);
        (st, cert)
    }
}

/// A shared bench owner (keygen once per process). 1024-bit keys match the
/// paper's `M_sign`.
pub fn bench_owner() -> &'static Owner {
    use std::sync::OnceLock;
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBE9C);
        Owner::new(1024, &mut rng)
    })
}

/// A faster owner for experiments where signing cost is not the subject.
pub fn bench_owner_small() -> &'static Owner {
    use std::sync::OnceLock;
    static OWNER: OnceLock<Owner> = OnceLock::new();
    OWNER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBE9D);
        Owner::new(512, &mut rng)
    })
}

/// Timing samples per measurement, from `ADP_PERF_SAMPLES` (default 25;
/// CI smoke jobs set 2 so harnesses cannot rot without burning minutes).
pub fn perf_samples() -> usize {
    std::env::var("ADP_PERF_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25usize)
        .max(1)
}

/// Median wall time of one call to `f` in nanoseconds, calibrated so each
/// sample spans ~2 ms (cheap routines are batched; expensive ones run
/// once per sample). The same estimator `perf_trajectory` uses.
pub fn measure_ns<T>(n_samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().max(Duration::from_nanos(50));
    let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 20_000);
    let mut times: Vec<f64> = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let start = Instant::now();
        for _ in 0..per_sample {
            std::hint::black_box(f());
        }
        times.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Times a closure, returning (result, elapsed).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure averaged over `iters` runs (after one warmup).
pub fn timed_avg(iters: usize, mut f: impl FnMut()) -> Duration {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Minimal fixed-width table printer for the figure harnesses.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Starts a table and prints the header row.
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(10)).collect();
        let p = TablePrinter { widths };
        p.row(headers);
        let rule: Vec<String> = p.widths.iter().map(|w| "-".repeat(*w)).collect();
        p.row(&rule.iter().map(String::as_str).collect::<Vec<_>>());
        p
    }

    /// Prints one row.
    pub fn row(&self, cells: &[&str]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(10);
            line.push_str(&format!("{cell:>w$}  "));
        }
        println!("{}", line.trim_end());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a duration in milliseconds with 3 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_relation::{KeyRange, SelectQuery};

    #[test]
    fn spaced_workload_has_deterministic_selectivity() {
        let (t, domain) = WorkloadSpec::new(100).build();
        assert_eq!(t.len(), 100);
        assert!(t
            .rows()
            .iter()
            .all(|r| domain.contains_key(r.record.key(t.schema()))));
        // Keys at key_min, key_min+10, ...
        assert_eq!(t.rows()[0].record.key(t.schema()), domain.key_min());
        assert_eq!(t.rows()[99].record.key(t.schema()), domain.key_min() + 990);
    }

    #[test]
    fn payload_drives_record_size() {
        let (t, _) = WorkloadSpec::new(2).payload(512).build();
        assert!(t.rows()[0].record.wire_size() >= 512);
    }

    #[test]
    fn zipf_produces_hot_keys() {
        let (t, _) = WorkloadSpec::new(400).dist(KeyDist::Zipf).build();
        // The hottest key should have many replicas.
        let max_replica = t.rows().iter().map(|r| r.replica).max().unwrap();
        assert!(
            max_replica >= 10,
            "zipf should duplicate hot keys, got {max_replica}"
        );
    }

    #[test]
    fn uniform_and_clustered_build() {
        for dist in [KeyDist::Uniform, KeyDist::Clustered, KeyDist::Zipf] {
            let (t, domain) = WorkloadSpec::new(50).dist(dist).build();
            assert_eq!(t.len(), 50);
            assert!(t
                .rows()
                .iter()
                .all(|r| domain.contains_key(r.record.key(t.schema()))));
        }
    }

    #[test]
    fn signed_workload_verifies() {
        let (st, cert) = WorkloadSpec::new(30).signed(bench_owner_small(), SchemeConfig::default());
        let query = SelectQuery::range(KeyRange::all());
        let (result, vo) = Publisher::new(&st).answer_select(&query).unwrap();
        let report = verify_select(&cert, &query, &result, &vo).unwrap();
        assert_eq!(report.matched, 30);
    }
}
