//! In-memory tables kept sorted on the key attribute.
//!
//! Duplicate key values are allowed: following Section 3.1 of the paper
//! ("duplicate values can be disambiguated by appending a replica number"),
//! each row carries a `replica` number making `(key, replica)` unique, and
//! rows are maintained in `(key, replica)` order.

use crate::record::Record;
use crate::schema::{Schema, SchemaError};
use std::fmt;
use std::ops::Bound;

/// A row: the record plus its replica disambiguator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    pub replica: u32,
    pub record: Record,
}

impl Row {
    /// The `(key, replica)` sort pair.
    pub fn sort_key(&self, schema: &Schema) -> (i64, u32) {
        (self.record.key(schema), self.replica)
    }
}

/// A relation sorted on its key attribute.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows in `(key, replica)` order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row at a position.
    pub fn row(&self, pos: usize) -> &Row {
        &self.rows[pos]
    }

    /// Validates and inserts a record, assigning the next replica number for
    /// its key. Returns the insertion position.
    pub fn insert(&mut self, record: Record) -> Result<usize, SchemaError> {
        self.schema.validate(record.values())?;
        let key = record.key(&self.schema);
        // Position after the last row with this key.
        let pos = self
            .rows
            .partition_point(|r| r.record.key(&self.schema) <= key);
        let replica = if pos > 0 && self.rows[pos - 1].record.key(&self.schema) == key {
            self.rows[pos - 1].replica + 1
        } else {
            0
        };
        self.rows.insert(pos, Row { replica, record });
        Ok(pos)
    }

    /// Removes the row at `pos`, returning it.
    pub fn remove_at(&mut self, pos: usize) -> Row {
        self.rows.remove(pos)
    }

    /// Finds the position of `(key, replica)`.
    pub fn position_of(&self, key: i64, replica: u32) -> Option<usize> {
        let start = self
            .rows
            .partition_point(|r| r.sort_key(&self.schema) < (key, replica));
        if start < self.rows.len() && self.rows[start].sort_key(&self.schema) == (key, replica) {
            Some(start)
        } else {
            None
        }
    }

    /// Positions of rows whose key lies within the given bounds.
    /// Returns a half-open position range `[lo, hi)`.
    pub fn key_range_positions(&self, lo: Bound<i64>, hi: Bound<i64>) -> (usize, usize) {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(a) => self
                .rows
                .partition_point(|r| r.record.key(&self.schema) < a),
            Bound::Excluded(a) => self
                .rows
                .partition_point(|r| r.record.key(&self.schema) <= a),
        };
        let end = match hi {
            Bound::Unbounded => self.rows.len(),
            Bound::Included(b) => self
                .rows
                .partition_point(|r| r.record.key(&self.schema) <= b),
            Bound::Excluded(b) => self
                .rows
                .partition_point(|r| r.record.key(&self.schema) < b),
        };
        (start, end.max(start))
    }

    /// Iterates rows whose key lies within the bounds.
    pub fn scan_range(
        &self,
        lo: Bound<i64>,
        hi: Bound<i64>,
    ) -> impl Iterator<Item = (usize, &Row)> {
        let (s, e) = self.key_range_positions(lo, hi);
        self.rows[s..e]
            .iter()
            .enumerate()
            .map(move |(i, r)| (s + i, r))
    }

    /// Replaces non-key attributes of the row at `pos` in place.
    ///
    /// # Panics
    /// If the new values change the key attribute (use remove + insert for
    /// key changes, which relocates the row).
    pub fn update_in_place(&mut self, pos: usize, record: Record) -> Result<(), SchemaError> {
        self.schema.validate(record.values())?;
        assert_eq!(
            record.key(&self.schema),
            self.rows[pos].record.key(&self.schema),
            "update_in_place cannot change the key attribute"
        );
        self.rows[pos].record = record;
        Ok(())
    }

    /// Minimum and maximum key values, or `None` when empty.
    pub fn key_extent(&self) -> Option<(i64, i64)> {
        if self.rows.is_empty() {
            None
        } else {
            Some((
                self.rows[0].record.key(&self.schema),
                self.rows[self.rows.len() - 1].record.key(&self.schema),
            ))
        }
    }

    /// Builds a table from records (bulk load).
    pub fn from_records(
        name: impl Into<String>,
        schema: Schema,
        records: Vec<Record>,
    ) -> Result<Self, SchemaError> {
        let mut t = Table::new(name, schema);
        // Validate first so a failed bulk load leaves nothing half-inserted.
        for r in &records {
            t.schema.validate(r.values())?;
        }
        let key_idx = t.schema.key_index();
        let mut rows: Vec<Row> = records
            .into_iter()
            .map(|record| Row { replica: 0, record })
            .collect();
        rows.sort_by_key(|r| r.record.get(key_idx).as_int().unwrap());
        // Assign replica numbers within equal-key runs.
        let mut i = 0;
        while i < rows.len() {
            let k = rows[i].record.get(key_idx).as_int().unwrap();
            let mut repl = 0;
            let mut j = i;
            while j < rows.len() && rows[j].record.get(key_idx).as_int().unwrap() == k {
                rows[j].replica = repl;
                repl += 1;
                j += 1;
            }
            i = j;
        }
        t.rows = rows;
        Ok(t)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE {} ({} rows)", self.name, self.rows.len())?;
        for row in self.rows.iter().take(20) {
            writeln!(f, "  {}", row.record)?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … {} more", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{Value, ValueType};

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ValueType::Int),
                Column::new("salary", ValueType::Int),
            ],
            "salary",
        )
    }

    fn rec(id: i64, salary: i64) -> Record {
        Record::new(vec![Value::Int(id), Value::Int(salary)])
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut t = Table::new("emp", schema());
        for (id, sal) in [(4, 12100), (5, 2000), (1, 8010), (2, 3500), (3, 25000)] {
            t.insert(rec(id, sal)).unwrap();
        }
        let keys: Vec<i64> = t.rows().iter().map(|r| r.record.key(t.schema())).collect();
        assert_eq!(keys, vec![2000, 3500, 8010, 12100, 25000]);
    }

    #[test]
    fn duplicate_keys_get_replicas() {
        let mut t = Table::new("t", schema());
        t.insert(rec(1, 100)).unwrap();
        t.insert(rec(2, 100)).unwrap();
        t.insert(rec(3, 100)).unwrap();
        let replicas: Vec<u32> = t.rows().iter().map(|r| r.replica).collect();
        assert_eq!(replicas, vec![0, 1, 2]);
        assert!(t.position_of(100, 1).is_some());
        assert!(t.position_of(100, 3).is_none());
    }

    #[test]
    fn range_positions() {
        let mut t = Table::new("t", schema());
        for sal in [2000, 3500, 8010, 12100, 25000] {
            t.insert(rec(0, sal)).unwrap();
        }
        // salary < 10000 → first three rows.
        assert_eq!(
            t.key_range_positions(Bound::Unbounded, Bound::Excluded(10000)),
            (0, 3)
        );
        // 3500 <= salary <= 12100.
        assert_eq!(
            t.key_range_positions(Bound::Included(3500), Bound::Included(12100)),
            (1, 4)
        );
        // Empty range.
        assert_eq!(
            t.key_range_positions(Bound::Included(26000), Bound::Unbounded),
            (5, 5)
        );
        assert_eq!(
            t.key_range_positions(Bound::Excluded(8010), Bound::Excluded(8010)),
            (3, 3)
        );
    }

    #[test]
    fn scan_range_yields_positions() {
        let mut t = Table::new("t", schema());
        for sal in [10, 20, 30] {
            t.insert(rec(0, sal)).unwrap();
        }
        let got: Vec<(usize, i64)> = t
            .scan_range(Bound::Included(15), Bound::Unbounded)
            .map(|(i, r)| (i, r.record.key(t.schema())))
            .collect();
        assert_eq!(got, vec![(1, 20), (2, 30)]);
    }

    #[test]
    fn bulk_load_assigns_replicas() {
        let t = Table::from_records(
            "t",
            schema(),
            vec![rec(1, 5), rec(2, 5), rec(3, 1), rec(4, 5)],
        )
        .unwrap();
        let pairs: Vec<(i64, u32)> = t.rows().iter().map(|r| r.sort_key(t.schema())).collect();
        assert_eq!(pairs, vec![(1, 0), (5, 0), (5, 1), (5, 2)]);
    }

    #[test]
    fn update_in_place_rejects_key_change() {
        let mut t = Table::new("t", schema());
        t.insert(rec(1, 100)).unwrap();
        assert!(t.update_in_place(0, rec(9, 100)).is_ok());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = t.update_in_place(0, rec(9, 999));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = Table::new("t", schema());
        assert!(t
            .insert(Record::new(vec![Value::from("x"), Value::Int(1)]))
            .is_err());
        assert!(t.insert(Record::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn key_extent() {
        let mut t = Table::new("t", schema());
        assert_eq!(t.key_extent(), None);
        t.insert(rec(1, 7)).unwrap();
        t.insert(rec(2, 3)).unwrap();
        assert_eq!(t.key_extent(), Some((3, 7)));
    }
}
