//! A slice of the paper's Section 3.2 attack matrix ported to the
//! baseline verifiers, so "the baselines verify too" is proven rather
//! than assumed. Three cheating strategies per scheme:
//!
//! * **dropped boundary row** — omit the first/last row of the answer;
//! * **substituted row** — replace one returned record with a forgery;
//! * **truncated VO** — ship fewer proof elements than the answer needs.
//!
//! Where a scheme *cannot* detect a strategy (the completeness gaps of
//! Ma et al. and the VB-tree), the test asserts the forged answer
//! **passes** — the gap is the documented finding (`docs/EVALUATION.md`
//! §"What the baselines cannot detect"), and these tests keep the doc's
//! claims tied to executable fact.

use adp_baselines::{devanbu, ma, vbtree};
use adp_crypto::{Hasher, Keypair};
use adp_relation::{Column, KeyRange, Record, Schema, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn keypair() -> &'static Keypair {
    static K: OnceLock<Keypair> = OnceLock::new();
    K.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA77AC);
        Keypair::generate(512, &mut rng)
    })
}

/// 30 rows, keys 0, 10, …, 290, one text payload column.
fn table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Text),
        ],
        "k",
    );
    let mut t = Table::new("t", schema);
    for i in 0..30i64 {
        t.insert(Record::new(vec![
            Value::Int(i * 10),
            Value::from(format!("r{i}")),
        ]))
        .unwrap();
    }
    t
}

fn forged(k: i64) -> Record {
    Record::new(vec![Value::Int(k), Value::from("forged")])
}

const RANGE_LO: i64 = 100;
const RANGE_HI: i64 = 200;

// ---------------------------------------------------------------- Devanbu

fn mht_answer() -> (
    devanbu::MhtCertificate,
    KeyRange,
    Vec<Record>,
    devanbu::MhtRangeVO,
) {
    let mht = devanbu::MhtTable::publish(keypair(), Hasher::default(), table());
    let range = KeyRange::closed(RANGE_LO, RANGE_HI);
    let (rows, vo) = mht.answer_range(&range);
    (mht.certificate(), range, rows, vo)
}

#[test]
fn mht_honest_answer_verifies() {
    let (cert, range, rows, vo) = mht_answer();
    devanbu::verify_range(&cert, 0, &range, &rows, &vo).unwrap();
}

#[test]
fn mht_detects_dropped_boundary_row() {
    // Dropping the left boundary tuple (and claiming the answer starts
    // one position later) must break either the root or the straddle
    // check — this is exactly the expansion device's job.
    let (cert, range, mut rows, mut vo) = mht_answer();
    rows.remove(0);
    assert!(devanbu::verify_range(&cert, 0, &range, &rows, &vo).is_err());
    // Even adjusting `lo` to keep the leaf positions consistent fails:
    // the first row is now in-range, so the straddle condition trips.
    vo.lo += 1;
    assert!(devanbu::verify_range(&cert, 0, &range, &rows, &vo).is_err());
}

#[test]
fn mht_detects_dropped_interior_row() {
    let (cert, range, mut rows, vo) = mht_answer();
    rows.remove(rows.len() / 2);
    assert!(devanbu::verify_range(&cert, 0, &range, &rows, &vo).is_err());
}

#[test]
fn mht_detects_substituted_row() {
    let (cert, range, mut rows, vo) = mht_answer();
    rows[3] = forged(130);
    assert!(devanbu::verify_range(&cert, 0, &range, &rows, &vo).is_err());
}

#[test]
fn mht_detects_truncated_vo() {
    let (cert, range, rows, mut vo) = mht_answer();
    assert!(!vo.fringe.is_empty(), "interior range must carry fringe");
    vo.fringe.pop();
    assert!(devanbu::verify_range(&cert, 0, &range, &rows, &vo).is_err());
    vo.fringe.clear();
    assert!(devanbu::verify_range(&cert, 0, &range, &rows, &vo).is_err());
}

// ------------------------------------------------------------------- Ma

fn ma_answer() -> (ma::MaCertificate, Vec<usize>, Vec<Record>, ma::MaVO) {
    let t = ma::MaTable::publish(keypair(), Hasher::default(), table());
    let proj: Vec<usize> = vec![0, 1];
    let (rows, vo) = t.answer_range(&KeyRange::closed(RANGE_LO, RANGE_HI), &proj);
    (t.certificate(), proj, rows, vo)
}

#[test]
fn ma_honest_answer_verifies() {
    let (cert, proj, rows, vo) = ma_answer();
    ma::verify_range(&cert, &proj, 2, &rows, &vo).unwrap();
}

#[test]
fn ma_detects_substituted_row() {
    let (cert, proj, mut rows, vo) = ma_answer();
    rows[2] = forged(120);
    assert!(ma::verify_range(&cert, &proj, 2, &rows, &vo).is_err());
}

#[test]
fn ma_detects_truncated_vo() {
    // Dropping a row proof (but not the row) breaks the count check;
    // dropping the aggregate breaks the presence check.
    let (cert, proj, rows, mut vo) = ma_answer();
    vo.rows.pop();
    assert!(ma::verify_range(&cert, &proj, 2, &rows, &vo).is_err());
    let (cert, proj, rows, mut vo) = ma_answer();
    vo.aggregate = None;
    assert!(ma::verify_range(&cert, &proj, 2, &rows, &vo).is_err());
}

#[test]
fn ma_detects_clumsy_row_drop() {
    // Dropping a row while keeping its proof in the VO: count mismatch.
    let (cert, proj, mut rows, vo) = ma_answer();
    rows.pop();
    assert!(ma::verify_range(&cert, &proj, 2, &rows, &vo).is_err());
}

#[test]
fn ma_cannot_detect_consistent_boundary_drop() {
    // THE completeness gap: re-answering a narrower range produces a
    // perfectly valid (rows, VO) pair — the dropped boundary row is
    // undetectable because nothing ties the result to the query range.
    let t = ma::MaTable::publish(keypair(), Hasher::default(), table());
    let cert = t.certificate();
    let proj: Vec<usize> = vec![0, 1];
    let full = KeyRange::closed(RANGE_LO, RANGE_HI);
    let (honest_rows, _) = t.answer_range(&full, &proj);
    let (rows, vo) = t.answer_range(&KeyRange::closed(RANGE_LO, RANGE_HI - 10), &proj);
    assert_eq!(rows.len() + 1, honest_rows.len());
    ma::verify_range(&cert, &proj, 2, &rows, &vo).unwrap();
}

// -------------------------------------------------------------- VB-tree

fn vb_answer() -> (vbtree::VbCertificate, Vec<Record>, vbtree::VbVO) {
    let t = vbtree::VbTree::publish(keypair(), Hasher::default(), 4, table());
    let (rows, vo) = t.answer_range(&KeyRange::closed(RANGE_LO, RANGE_HI));
    (t.certificate(), rows, vo)
}

#[test]
fn vb_honest_answer_verifies() {
    let (cert, rows, vo) = vb_answer();
    vbtree::verify_range(&cert, &rows, &vo).unwrap();
}

#[test]
fn vb_detects_substituted_row() {
    let (cert, mut rows, vo) = vb_answer();
    rows[4] = forged(140);
    assert!(vbtree::verify_range(&cert, &rows, &vo).is_err());
}

#[test]
fn vb_detects_interior_drop() {
    let (cert, mut rows, vo) = vb_answer();
    rows.remove(rows.len() / 2);
    assert!(vbtree::verify_range(&cert, &rows, &vo).is_err());
}

#[test]
fn vb_detects_truncated_vo() {
    // The complement digests are load-bearing: removing one changes the
    // envelope fold and the signature no longer matches.
    let t = vbtree::VbTree::publish(keypair(), Hasher::default(), 4, table());
    // A range starting mid-node so the left complement is non-empty.
    let (rows, mut vo) = t.answer_range(&KeyRange::closed(RANGE_LO + 10, RANGE_HI));
    let cert = t.certificate();
    assert!(
        !vo.complement_left.is_empty() || !vo.complement_right.is_empty(),
        "fixture must exercise a non-empty complement"
    );
    if vo.complement_left.is_empty() {
        vo.complement_right.pop();
    } else {
        vo.complement_left.remove(0);
    }
    assert!(vbtree::verify_range(&cert, &rows, &vo).is_err());
}

#[test]
fn vb_cannot_detect_consistent_boundary_drop() {
    // Same gap as Ma: a fresh envelope for a narrower range verifies.
    let t = vbtree::VbTree::publish(keypair(), Hasher::default(), 4, table());
    let cert = t.certificate();
    let (honest_rows, _) = t.answer_range(&KeyRange::closed(RANGE_LO, RANGE_HI));
    let (rows, vo) = t.answer_range(&KeyRange::closed(RANGE_LO, RANGE_HI - 10));
    assert_eq!(rows.len() + 1, honest_rows.len());
    vbtree::verify_range(&cert, &rows, &vo).unwrap();
}
