//! The paper's Figure 1 / Introduction scenario: access-control-compliant
//! completeness proofs.
//!
//! The Employee table is published to an untrusted proxy. Access policy:
//! the HR manager sees everything; HR executives see only records with
//! `Salary < 9000`. Both issue `SELECT * FROM Emp WHERE Salary < 10000`.
//!
//! * Under the **signature-chain scheme**, the executive's query is
//!   rewritten to `Salary < 9000` and the proof discloses nothing beyond
//!   it — the $12100 record stays hidden.
//! * Under the **Devanbu et al. Merkle baseline**, proving the same result
//!   complete requires handing the executive the $12100 boundary record —
//!   contradicting the policy. This example shows both behaviours.
//!
//! Run with: `cargo run --release --example payroll_access_control`

use adp::baselines::devanbu;
use adp::core::prelude::*;
use adp::crypto::Hasher;
use adp::relation::{
    AccessPolicy, Column, KeyRange, Record, Role, RolePolicy, Schema, SelectQuery, Table, Value,
    ValueType,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn employee_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Text),
            Column::new("salary", ValueType::Int),
            Column::new("dept", ValueType::Int),
            Column::new("photo", ValueType::Bytes),
        ],
        "salary",
    );
    let mut t = Table::new("Emp", schema);
    for (id, name, salary, dept) in [
        (5i64, "A", 2000i64, 1i64),
        (2, "C", 3500, 2),
        (1, "D", 8010, 1),
        (4, "B", 12100, 3),
        (3, "E", 25000, 2),
    ] {
        t.insert(Record::new(vec![
            Value::Int(id),
            Value::from(name),
            Value::Int(salary),
            Value::Int(dept),
            Value::Bytes(vec![id as u8; 256]), // the BLOB the paper mentions
        ]))
        .unwrap();
    }
    t
}

fn main() {
    // Policy: manager sees all; executive sees Salary < 9000.
    let mut policy = AccessPolicy::new();
    policy.set(Role::new("hr_manager"), RolePolicy::default());
    policy.set(
        Role::new("hr_exec"),
        RolePolicy {
            key_range: Some(KeyRange::less_than(9_000)),
            ..Default::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(1066157);
    let owner = Owner::new(1024, &mut rng);
    let table = employee_table();
    let signed = owner
        .sign_table(
            table.clone(),
            Domain::new(0, 100_000),
            SchemeConfig::default(),
        )
        .unwrap();
    let cert = owner.certificate(&signed);
    let publisher = Publisher::new(&signed);

    let user_query = SelectQuery::range(KeyRange::less_than(10_000));
    println!("query (both roles): SELECT * FROM Emp WHERE Salary < 10000\n");

    // ----- HR manager: full answer -----
    let mgr_query = policy.rewrite(cert_schema(&cert), &Role::new("hr_manager"), &user_query);
    let (mgr_rows, mgr_vo) = publisher.answer_select(&mgr_query).unwrap();
    verify_select(&cert, &mgr_query, &mgr_rows, &mgr_vo).unwrap();
    println!(
        "hr_manager gets {} rows (verified complete):",
        mgr_rows.len()
    );
    for r in &mgr_rows {
        println!("  id={} name={} salary={}", r.get(0), r.get(1), r.get(2));
    }

    // ----- HR executive: rewritten to Salary < 9000 -----
    let exec_query = policy.rewrite(cert_schema(&cert), &Role::new("hr_exec"), &user_query);
    let (exec_rows, exec_vo) = publisher.answer_select(&exec_query).unwrap();
    verify_select(&cert, &exec_query, &exec_rows, &exec_vo).unwrap();
    println!(
        "\nhr_exec's query is rewritten to Salary < 9000 → {} rows (verified complete):",
        exec_rows.len()
    );
    for r in &exec_rows {
        println!("  id={} name={} salary={}", r.get(0), r.get(1), r.get(2));
    }
    let max_salary = exec_rows
        .iter()
        .map(|r| r.get(2).as_int().unwrap())
        .max()
        .unwrap();
    assert!(max_salary < 9_000);
    println!("  → completeness proven WITHOUT disclosing any salary ≥ 9000");

    // ----- The Devanbu baseline cannot do this -----
    let mut kp_rng = StdRng::seed_from_u64(10);
    let keypair = adp::crypto::Keypair::generate(1024, &mut kp_rng);
    let mht = devanbu::MhtTable::publish(&keypair, Hasher::default(), table);
    let exec_range = KeyRange::less_than(9_000);
    let (mht_rows, mht_vo) = mht.answer_range(&exec_range);
    devanbu::verify_range(&mht.certificate(), 2, &exec_range, &mht_rows, &mht_vo).unwrap();
    let leaked: Vec<i64> = mht_rows
        .iter()
        .map(|r| r.get(2).as_int().unwrap())
        .filter(|&s| s >= 9_000)
        .collect();
    println!(
        "\nDevanbu-MHT baseline answering the same rewritten query must expose\n\
         boundary salaries {leaked:?} to the executive — violating the policy\n\
         (and it ships every column, including the 256-byte photo BLOB)."
    );

    // Projection bonus: the executive can ask for names only; BLOBs and
    // salaries of others never travel, yet the proof still verifies.
    let slim_query = exec_query.clone().project(&["name"]);
    let (slim_rows, slim_vo) = publisher.answer_select(&slim_query).unwrap();
    verify_select(&cert, &slim_query, &slim_rows, &slim_vo).unwrap();
    println!(
        "\nprojection: SELECT name … returns {} columns per row (name + the\n\
         salary key needed for completeness), never the photo BLOB.",
        slim_rows[0].arity()
    );
}

/// The schema users know from the certificate.
fn cert_schema(cert: &Certificate) -> &adp::relation::Schema {
    &cert.schema
}
