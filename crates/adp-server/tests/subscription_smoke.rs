//! The CI `subscription-smoke` scenario: an owner-fed publisher, a
//! log-shipping follower mirroring it over the wire, and 50 live
//! subscribers (mixed between the owner's publisher and the follower).
//! One churn batch lands; every subscriber receives a pushed `DeltaVo`
//! and verifies it incrementally against the owner's certificate, and
//! the follower's full-range answer stays byte-identical to the
//! upstream's.

use adp_core::prelude::*;
use adp_relation::{Column, KeyRange, Record, Schema, SelectQuery, Table, Value, ValueType};
use adp_server::follow::{apply_segment, bootstrap_store};
use adp_server::{
    FollowStart, LogFollower, RemoteSubscriber, RemoteVerifier, Server, ServerConfig,
};
use adp_store::Store;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::time::Duration;

const SUBSCRIBERS: usize = 50;

#[test]
fn fifty_subscribers_one_churn_batch_all_deltas_verify() {
    // ---- owner + upstream publisher --------------------------------------
    let mut rng = StdRng::seed_from_u64(0x50B5);
    let owner = Owner::new(512, &mut rng);
    let schema = Schema::new(
        vec![
            Column::new("id", ValueType::Int),
            Column::new("salary", ValueType::Int),
        ],
        "salary",
    );
    let mut t = Table::new("emp", schema);
    for i in 0..40i64 {
        t.insert(Record::new(vec![
            Value::Int(i),
            Value::Int(1_000 + i * 200),
        ]))
        .unwrap();
    }
    let signed = owner
        .sign_table(t, Domain::new(0, 100_000), SchemeConfig::default())
        .unwrap();
    let cert = owner.certificate(&signed);
    let mut owner_st = signed.clone();
    let owner_dir =
        std::env::temp_dir().join(format!("adp-sub-smoke-owner-{}", std::process::id()));
    let _ = fs::remove_dir_all(&owner_dir);
    Store::create(&owner_dir, signed).unwrap();
    let mut upstream = Server::new(ServerConfig::default());
    upstream.open_store(0, &owner_dir).unwrap();
    let up_handle = upstream.serve("127.0.0.1:0").unwrap();

    // ---- follower: bootstrap over the wire, serve the mirror -------------
    let (mut conn, start) = LogFollower::connect(up_handle.addr(), 0, None).unwrap();
    let snapshot = match start {
        FollowStart::Snapshot(s) => s,
        FollowStart::Backlog(_) => panic!("fresh bootstrap must get a snapshot"),
    };
    let mirror_dir =
        std::env::temp_dir().join(format!("adp-sub-smoke-mirror-{}", std::process::id()));
    let _ = fs::remove_dir_all(&mirror_dir);
    let mirror = bootstrap_store(&mirror_dir, &snapshot, &cert.public_key).unwrap();
    let mut follower = Server::new(ServerConfig::default());
    follower.add_store(0, mirror);
    let f_handle = follower.serve("127.0.0.1:0").unwrap();

    // ---- 50 subscribers, split across publisher and mirror ---------------
    // Overlapping ranges so the churn batch touches every subscription.
    let mut subs: Vec<RemoteSubscriber> = (0..SUBSCRIBERS)
        .map(|i| {
            let addr = if i % 2 == 0 {
                up_handle.addr()
            } else {
                f_handle.addr()
            };
            let lo = 1_000 + (i as i64 % 5) * 400;
            RemoteSubscriber::subscribe(
                addr,
                cert.clone(),
                0,
                i as u32 + 1,
                KeyRange::closed(lo, lo + 6_000),
            )
            .unwrap_or_else(|e| panic!("subscriber {i} failed to register: {e}"))
        })
        .collect();
    for (i, sub) in subs.iter().enumerate() {
        assert!(
            sub.rows().count() > 0,
            "subscriber {i} got an empty baseline"
        );
    }

    // ---- one churn batch --------------------------------------------------
    // Mutations spread across the table so every subscribed range is
    // dirtied: inserts and deletes inside [1_000, 9_600].
    let report = owner
        .apply_batch(
            &mut owner_st,
            vec![
                Mutation::Insert(Record::new(vec![Value::Int(100), Value::Int(2_100)])),
                Mutation::Insert(Record::new(vec![Value::Int(101), Value::Int(4_300)])),
                Mutation::Insert(Record::new(vec![Value::Int(102), Value::Int(6_500)])),
                Mutation::Delete {
                    key: 3_000,
                    replica: 0,
                },
                Mutation::Delete {
                    key: 7_000,
                    replica: 0,
                },
            ],
        )
        .unwrap();
    up_handle
        .apply_update(0, &report.ops, &report.resigned)
        .unwrap();

    // The follower receives the pushed segment and applies it — its own
    // subscribers then get their deltas from the mirror.
    conn.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let records = conn.next_segment().unwrap();
    apply_segment(&f_handle, 0, &records).unwrap();

    // ---- every subscriber verifies its pushed delta -----------------------
    for (i, sub) in subs.iter_mut().enumerate() {
        let epoch = sub
            .poll_delta(Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("subscriber {i} delta rejected: {e}"))
            .unwrap_or_else(|| panic!("subscriber {i} never got its delta"));
        assert!(epoch > 0, "subscriber {i}");
        assert_eq!(sub.deltas_applied(), 2, "subscriber {i}");
        // The churn landed: at least one inserted key, no deleted key.
        let keys = sub.keys();
        assert!(
            !keys.contains(&3_000) && !keys.contains(&7_000),
            "subscriber {i}"
        );
    }
    let pushed = up_handle.stats().deltas_pushed + f_handle.stats().deltas_pushed;
    assert_eq!(
        pushed,
        2 * SUBSCRIBERS as u64,
        "one baseline + one delta per subscriber"
    );

    // ---- follower is digest-identical to the upstream ---------------------
    let full = SelectQuery::range(KeyRange::all());
    let mut up_user = RemoteVerifier::connect(up_handle.addr(), cert.clone(), 0).unwrap();
    let mut f_user = RemoteVerifier::connect(f_handle.addr(), cert.clone(), 0).unwrap();
    let (_, up_result, up_vo) = up_user.select_with_bytes(&full).unwrap();
    let (_, f_result, f_vo) = f_user.select_with_bytes(&full).unwrap();
    assert_eq!(up_result, f_result, "mirror result bytes diverged");
    assert_eq!(up_vo, f_vo, "mirror VO bytes diverged");

    for sub in subs {
        sub.unsubscribe().unwrap();
    }
    f_handle.shutdown();
    up_handle.shutdown();
    let _ = fs::remove_dir_all(&owner_dir);
    let _ = fs::remove_dir_all(&mirror_dir);
}
