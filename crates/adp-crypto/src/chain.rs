//! Iterated one-way hash chains `h^i(r|j)` (Sections 3.1 and 5.1).
//!
//! The paper defines `h^i(r)` recursively: `h^0(r)` applies the hash once to
//! `r`, and `h^i(r) = h^{i-1}(h(r))`. So **`h^i` means `i + 1` hash
//! applications**, and `h^j` is defined for `j = 0` (one application) but
//! *undefined for `j < 0`* — that asymmetry is precisely what makes the
//! completeness proof sound (Case 1 of Section 3.2): a publisher holding
//! `r_{a-1} ≥ α` would need `h^{α - r_{a-1} - 1}` with a negative exponent.
//!
//! Chains are *tagged*: the digit-decomposed scheme hashes `r|j` (the value
//! concatenated with its digit position `j`), so the `m+1` digit chains of
//! one value are mutually independent. The first application uses the
//! `Value` hash domain and subsequent steps the `Step` domain, which also
//! guarantees `h^{-1}(x) != x` structurally (cf. the paper's remark on
//! choosing `h` with output length different from `|r|`).

use crate::digest::Digest;
use crate::hasher::{HashDomain, Hasher};

/// Encodes the tagged pre-image `r|j` of a digit chain.
#[inline]
fn tagged(value: &[u8], position: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(value.len() + 4);
    v.extend_from_slice(value);
    v.extend_from_slice(&position.to_le_bytes());
    v
}

/// Computes `h^steps(value|position)`, i.e. `steps + 1` hash applications
/// starting from the tagged plaintext value.
pub fn chain_from_value(hasher: &Hasher, value: &[u8], position: u32, steps: u64) -> Digest {
    let mut d = hasher.hash(HashDomain::Value, &tagged(value, position));
    for _ in 0..steps {
        d = hasher.hash(HashDomain::Step, d.as_bytes());
    }
    d
}

/// Computes `h^{steps}(value|position)` for a whole run of tagged chains
/// sharing one value — the owner-side shape in optimized mode, where the
/// `m+1` digit chains of one key differ only in their position tag. The
/// tag buffer is built once and patched per chain instead of reallocating.
///
/// Each returned digest is byte-identical to
/// `chain_from_value(hasher, value, position, steps)`.
pub fn chain_run(hasher: &Hasher, value: &[u8], tags: &[(u32, u64)]) -> Vec<Digest> {
    let mut buf = Vec::with_capacity(value.len() + 4);
    buf.extend_from_slice(value);
    buf.extend_from_slice(&[0u8; 4]);
    tags.iter()
        .map(|&(position, steps)| {
            buf[value.len()..].copy_from_slice(&position.to_le_bytes());
            let mut d = hasher.hash(HashDomain::Value, &buf);
            for _ in 0..steps {
                d = hasher.hash(HashDomain::Step, d.as_bytes());
            }
            d
        })
        .collect()
}

/// Extends an intermediate chain digest by `extra` further applications.
///
/// This is the user-side operation of Figure 4: the publisher transmits
/// `h^{δ_e}(r|j)` and the user derives `h^{δ_e + extra}(r|j)`.
pub fn chain_extend(hasher: &Hasher, digest: Digest, extra: u64) -> Digest {
    let mut d = digest;
    for _ in 0..extra {
        d = hasher.hash(HashDomain::Step, d.as_bytes());
    }
    d
}

/// A memoizing walker over one tagged chain, letting the owner pick up
/// several intermediate points (`h^{δ}`, `h^{δ+B-1}`, `h^{δ+B}`, …) while
/// hashing each prefix only once.
pub struct ChainWalker<'a> {
    hasher: &'a Hasher,
    current: Digest,
    /// Number of *steps* taken so far (`h^{steps}` reached).
    steps: u64,
}

impl<'a> ChainWalker<'a> {
    /// Starts a walker at `h^0(value|position)`.
    pub fn new(hasher: &'a Hasher, value: &[u8], position: u32) -> Self {
        let current = hasher.hash(HashDomain::Value, &tagged(value, position));
        ChainWalker {
            hasher,
            current,
            steps: 0,
        }
    }

    /// Advances to `h^steps` and returns that digest.
    ///
    /// # Panics
    /// If asked to move backwards (chains are one-way).
    pub fn at(&mut self, steps: u64) -> Digest {
        assert!(
            steps >= self.steps,
            "hash chains cannot be walked backwards"
        );
        while self.steps < steps {
            self.current = self.hasher.hash(HashDomain::Step, self.current.as_bytes());
            self.steps += 1;
        }
        self.current
    }

    /// Current position (number of steps taken).
    pub fn position(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::{hash_ops, Hasher};

    /// The hash-op counter is process-global; serialize the tests that
    /// assert exact op counts so parallel tests cannot pollute them.
    fn count_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn zero_steps_is_one_application() {
        let h = Hasher::default();
        let d = chain_from_value(&h, b"r", 0, 0);
        assert_eq!(d, h.hash(HashDomain::Value, &tagged(b"r", 0)));
    }

    #[test]
    fn extension_composes() {
        // h^{a}(v) extended by b steps equals h^{a+b}(v): the core algebra
        // behind the boundary proof (δ_e + δ_c = Δ_t).
        let h = Hasher::default();
        for (a, b) in [(0u64, 0u64), (0, 5), (3, 4), (10, 0), (7, 13)] {
            let inter = chain_from_value(&h, b"val", 2, a);
            let extended = chain_extend(&h, inter, b);
            assert_eq!(
                extended,
                chain_from_value(&h, b"val", 2, a + b),
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn chain_run_matches_singles() {
        let h = Hasher::default();
        let tags = [(0u32, 0u64), (1, 5), (0x8000_0002, 13), (3, 1)];
        let bulk = chain_run(&h, b"shared-key", &tags);
        assert_eq!(bulk.len(), 4);
        for (d, &(pos, steps)) in bulk.iter().zip(&tags) {
            assert_eq!(*d, chain_from_value(&h, b"shared-key", pos, steps));
        }
    }

    #[test]
    fn positions_are_independent() {
        let h = Hasher::default();
        assert_ne!(
            chain_from_value(&h, b"v", 0, 4),
            chain_from_value(&h, b"v", 1, 4)
        );
    }

    #[test]
    fn values_are_independent() {
        let h = Hasher::default();
        assert_ne!(
            chain_from_value(&h, b"v1", 0, 4),
            chain_from_value(&h, b"v2", 0, 4)
        );
    }

    #[test]
    fn tag_is_unambiguous() {
        // value || position must not collide across the boundary.
        let h = Hasher::default();
        // tagged(b"a\x01", 0) vs tagged(b"a", 1): byte strings differ in the
        // 4-byte LE position suffix, so chains must differ.
        assert_ne!(
            chain_from_value(&h, b"a\x01", 0, 0),
            chain_from_value(&h, b"a", 1, 0)
        );
    }

    #[test]
    fn walker_matches_direct() {
        let h = Hasher::default();
        let mut w = ChainWalker::new(&h, b"walk", 3);
        assert_eq!(w.at(0), chain_from_value(&h, b"walk", 3, 0));
        assert_eq!(w.at(2), chain_from_value(&h, b"walk", 3, 2));
        assert_eq!(w.at(2), chain_from_value(&h, b"walk", 3, 2)); // idempotent
        assert_eq!(w.at(9), chain_from_value(&h, b"walk", 3, 9));
        assert_eq!(w.position(), 9);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn walker_cannot_go_back() {
        let h = Hasher::default();
        let mut w = ChainWalker::new(&h, b"walk", 0);
        let _ = w.at(5);
        let _ = w.at(4);
    }

    /// Measures `f`'s hash-op count, retrying because the process-global
    /// counter can be inflated by tests hashing in parallel threads; an
    /// undisturbed trial yields the exact count.
    fn exact_ops(expected: u64, f: impl Fn()) -> bool {
        let _guard = count_lock();
        (0..100).any(|_| {
            let before = hash_ops();
            f();
            hash_ops() - before == expected
        })
    }

    #[test]
    fn walker_saves_hash_ops() {
        let h = Hasher::default();
        // 1 initial application + 20 steps.
        assert!(exact_ops(21, || {
            let mut w = ChainWalker::new(&h, b"x", 0);
            let _ = w.at(10);
            let _ = w.at(20);
        }));
    }

    #[test]
    fn chain_cost_is_steps_plus_one() {
        let h = Hasher::default();
        assert!(exact_ops(8, || {
            let _ = chain_from_value(&h, b"x", 0, 7);
        }));
    }
}
